//! Host-side view of the PIM system: DPU allocation, CPU⇄MRAM transfers
//! and kernel launches.
//!
//! The host CPU is the only communication path between DPUs (paper
//! §2.2) — the API deliberately offers no DPU-to-DPU copy. Transfer
//! timing follows the UPMEM rank rule: per-DPU buffers move in parallel
//! when they all have the same size and serialize otherwise.
//!
//! Kernel launches are *functionally* executed across
//! [`PimConfig::host_threads`] host worker threads (DPUs are isolated,
//! so the fleet is embarrassingly parallel), while *modeled* timing
//! stays bit-identical to serial execution — see [`PimSystem::launch`].

use crate::arch::{Cycles, DpuId};
use crate::cost::CostModel;
use crate::dpu::{Dpu, Kernel};
use crate::error::{Result, SimError};
use crate::stats::{DpuRunStats, LaunchReport, TransferReport};

/// Configuration for a [`PimSystem`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PimConfig {
    /// Number of DPUs in the system (the paper uses 256).
    pub nr_dpus: usize,
    /// Tasklets used per kernel launch (the paper uses 14).
    pub tasklets: usize,
    /// Host worker threads used to *execute* kernel launches
    /// functionally. Purely a simulator-throughput knob: the modeled
    /// timing/energy is bit-identical for every value (see
    /// [`PimSystem::launch`]). `1` runs the fleet serially on the
    /// calling thread; the default is the host's available parallelism.
    pub host_threads: usize,
    /// Timing/energy model.
    pub cost: CostModel,
}

/// The default for [`PimConfig::host_threads`]: one worker per
/// available host CPU (at least 1).
pub fn default_host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            nr_dpus: crate::arch::DEFAULT_NR_DPUS,
            tasklets: crate::arch::DEFAULT_TASKLETS,
            host_threads: default_host_threads(),
            cost: CostModel::default(),
        }
    }
}

impl PimConfig {
    /// Convenience constructor with default cost model.
    pub fn new(nr_dpus: usize, tasklets: usize) -> Self {
        PimConfig {
            nr_dpus,
            tasklets,
            host_threads: default_host_threads(),
            cost: CostModel::default(),
        }
    }

    /// Returns `self` with [`PimConfig::host_threads`] set to `n`.
    #[must_use]
    pub fn with_host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Returns `self` with the given timing/energy model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// A simulated UPMEM system: a pool of DPUs plus the host transfer engine.
#[derive(Debug)]
pub struct PimSystem {
    dpus: Vec<Dpu>,
    config: PimConfig,
}

impl PimSystem {
    /// Builds a system from `config`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the DPU or tasklet count is zero or
    /// the tasklet count exceeds the hardware maximum.
    pub fn new(config: PimConfig) -> Result<Self> {
        if config.nr_dpus == 0 {
            return Err(SimError::InvalidConfig("nr_dpus must be > 0".into()));
        }
        if config.tasklets == 0 || config.tasklets > crate::arch::MAX_TASKLETS {
            return Err(SimError::InvalidConfig(format!(
                "tasklets must be in 1..={}, got {}",
                crate::arch::MAX_TASKLETS,
                config.tasklets
            )));
        }
        if config.host_threads == 0 {
            return Err(SimError::InvalidConfig(
                "host_threads must be > 0 (1 = serial execution)".into(),
            ));
        }
        let dpus = (0..config.nr_dpus)
            .map(|i| Dpu::new(DpuId(i as u32)))
            .collect();
        Ok(PimSystem { dpus, config })
    }

    /// The system configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Number of DPUs.
    pub fn nr_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// All DPU ids, in order.
    pub fn dpu_ids(&self) -> impl Iterator<Item = DpuId> + '_ {
        self.dpus.iter().map(|d| d.id())
    }

    /// Borrow one DPU.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`] if `id` is out of range.
    pub fn dpu(&self, id: DpuId) -> Result<&Dpu> {
        self.dpus.get(id.index()).ok_or(SimError::UnknownDpu {
            id,
            nr_dpus: self.dpus.len(),
        })
    }

    /// Borrow one DPU mutably.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`] if `id` is out of range.
    pub fn dpu_mut(&mut self, id: DpuId) -> Result<&mut Dpu> {
        let n = self.dpus.len();
        self.dpus
            .get_mut(id.index())
            .ok_or(SimError::UnknownDpu { id, nr_dpus: n })
    }

    /// Untimed host write into a DPU's MRAM — used for loading static
    /// data (embedding tables) during pre-processing, which the paper
    /// does not count toward inference latency.
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn load_mram(&mut self, id: DpuId, addr: u32, data: &[u8]) -> Result<()> {
        self.dpu_mut(id)?.mram_mut().host_write(addr, data)
    }

    /// Timed CPU→MRAM scatter: writes one buffer per `(dpu, addr, data)`
    /// triple (stage 1 of the UpDLRM pipeline).
    ///
    /// Timing: the host bus is shared, so the wall time is the *total*
    /// byte count over the aggregate bandwidth; when buffer sizes differ
    /// the transfers serialize at [`CostModel::ragged_bw_factor`] of the
    /// parallel bandwidth (paper §2.2).
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids; the
    /// system state is unspecified-but-valid if a mid-scatter error
    /// occurs (earlier buffers stay written).
    pub fn scatter(&mut self, transfers: &[(DpuId, u32, &[u8])]) -> Result<TransferReport> {
        for (id, addr, data) in transfers {
            self.dpu_mut(*id)?.mram_mut().host_write(*addr, data)?;
        }
        Ok(self.time_transfer(transfers.iter().map(|(_, _, d)| d.len()), true))
    }

    /// Timed CPU→MRAM scatter where each buffer is *broadcast* to a set
    /// of DPUs. The rank interface replicates a broadcast buffer to all
    /// targets in one bus pass, so each group's bytes are charged once
    /// regardless of how many DPUs receive them (UpDLRM uses this to
    /// hand one row partition's reference stream to all of its column
    /// slices).
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn scatter_broadcast(
        &mut self,
        groups: &[(&[DpuId], u32, &[u8])],
    ) -> Result<TransferReport> {
        self.scatter_broadcast_with(groups.iter().map(|(ids, addr, data)| (*ids, *addr, *data)))
    }

    /// Iterator form of [`PimSystem::scatter_broadcast`]: the caller
    /// streams `(targets, addr, data)` groups without materializing a
    /// transfer list, so a warm serving path can scatter with zero heap
    /// allocation. Timing is identical to the slice form.
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn scatter_broadcast_with<'a, I>(&mut self, groups: I) -> Result<TransferReport>
    where
        I: Iterator<Item = (&'a [DpuId], u32, &'a [u8])> + Clone,
    {
        for (ids, addr, data) in groups.clone() {
            for id in ids {
                self.dpu_mut(*id)?.mram_mut().host_write(addr, data)?;
            }
        }
        Ok(self.time_transfer(groups.map(|(_, _, d)| d.len()), true))
    }

    /// Timed MRAM→CPU gather: reads `len` bytes at `addr` from each DPU
    /// (stage 3 of the UpDLRM pipeline). Returns one buffer per request
    /// in order.
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn gather(
        &self,
        requests: &[(DpuId, u32, usize)],
    ) -> Result<(Vec<Vec<u8>>, TransferReport)> {
        let mut out = Vec::with_capacity(requests.len());
        for (id, addr, len) in requests {
            let dpu = self.dpu(*id)?;
            let mut buf = vec![0u8; *len];
            dpu.mram().host_read(*addr, &mut buf)?;
            out.push(buf);
        }
        let report = self.time_transfer(requests.iter().map(|(_, _, l)| *l), false);
        Ok((out, report))
    }

    /// Like [`PimSystem::gather`], but concatenates every request's
    /// bytes into the caller-owned `out` (request `i`'s data starts at
    /// the sum of the preceding lengths). Reuses `out`'s capacity, so a
    /// warm serving path gathers with zero heap allocation. Timing is
    /// identical to [`PimSystem::gather`].
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids; on error
    /// `out`'s contents are unspecified.
    pub fn gather_into(
        &self,
        requests: &[(DpuId, u32, usize)],
        out: &mut Vec<u8>,
    ) -> Result<TransferReport> {
        let total: usize = requests.iter().map(|(_, _, l)| *l).sum();
        out.clear();
        out.resize(total, 0);
        let mut off = 0usize;
        for (id, addr, len) in requests {
            let dpu = self.dpu(*id)?;
            dpu.mram().host_read(*addr, &mut out[off..off + len])?;
            off += len;
        }
        Ok(self.time_transfer(requests.iter().map(|(_, _, l)| *l), false))
    }

    fn time_transfer(
        &self,
        lens: impl Iterator<Item = usize> + Clone,
        to_mram: bool,
    ) -> TransferReport {
        let cost = &self.config.cost;
        let per_byte = if to_mram {
            cost.host_to_mram_ns_per_byte
        } else {
            cost.mram_to_host_ns_per_byte
        };
        let mut total: u64 = 0;
        let mut n = 0usize;
        let mut first: Option<usize> = None;
        let mut uniform = true;
        let mut max_len = 0usize;
        for len in lens {
            total += len as u64;
            n += 1;
            max_len = max_len.max(len);
            match first {
                None => first = Some(len),
                Some(f) if f != len => uniform = false,
                _ => {}
            }
        }
        if n == 0 {
            return TransferReport::default();
        }
        // Ragged transfers serialize at a degraded aggregate bandwidth
        // (§2.2 rank rule), but they can never complete faster than the
        // largest single buffer at full parallel bandwidth — that floor
        // is what `max_len` bounds. With the default `ragged_bw_factor`
        // (< 1) the serialized term always dominates, so the floor only
        // bites for calibrations where the factor exceeds 1.
        let wall_ns = if uniform {
            cost.host_transfer_base_ns + total as f64 * per_byte
        } else {
            let serialized = total as f64 * per_byte / cost.ragged_bw_factor;
            let parallel_floor = max_len as f64 * per_byte;
            cost.host_transfer_base_ns + serialized.max(parallel_floor)
        };
        TransferReport {
            wall_ns,
            bytes: total,
            buffers: n,
            parallel: uniform,
            energy_pj: total as f64 * cost.host_pj_per_byte,
        }
    }

    /// Launches `kernel` on the given DPUs with the configured tasklet
    /// count. DPUs execute in parallel: the report's wall time is the
    /// slowest DPU's time.
    ///
    /// Functionally, the fleet is executed across up to
    /// [`PimConfig::host_threads`] host worker threads. Real thread
    /// count never changes the result: each DPU's run is deterministic
    /// and isolated (its own MRAM/WRAM, a shared read-only kernel), and
    /// per-DPU statistics are merged back in `ids` order, so
    /// `wall_cycles` (a max) and `energy_pj` (a left-to-right f64 sum)
    /// are bit-identical to `host_threads = 1`.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults and unknown DPU ids. When several DPUs
    /// fault, the error reported is the faulting DPU earliest in `ids`.
    /// As with a mid-scatter error, DPU memory state afterwards is
    /// unspecified-but-valid: workers that already ran other DPUs leave
    /// their writes in place.
    pub fn launch<K: Kernel + ?Sized>(
        &mut self,
        ids: &[DpuId],
        kernel: &K,
    ) -> Result<LaunchReport> {
        let mut out = LaunchReport::default();
        self.launch_into(ids, kernel, &mut out)?;
        Ok(out)
    }

    /// Like [`PimSystem::launch`], but writes the report into a
    /// caller-owned `out`, reusing its `per_dpu` buffers (including each
    /// entry's per-tasklet vector). With a warm `out` the serial path
    /// (`host_threads = 1`) performs no heap allocation; the report is
    /// bit-identical to [`PimSystem::launch`] either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PimSystem::launch`]; on error `out` is left
    /// in an unspecified (but valid) state.
    pub fn launch_into<K: Kernel + ?Sized>(
        &mut self,
        ids: &[DpuId],
        kernel: &K,
        out: &mut LaunchReport,
    ) -> Result<()> {
        let tasklets = self.config.tasklets;
        let cost = self.config.cost.clone();
        let workers = self.config.host_threads.min(ids.len());
        if workers <= 1 {
            self.run_fleet_serial_into(ids, kernel, tasklets, &cost, &mut out.per_dpu)?;
        } else {
            match self.disjoint_dpu_refs(ids)? {
                // Duplicate ids cannot be split into disjoint `&mut`
                // chunks; re-launching the same DPU is deterministic
                // either way, so fall back to the serial path.
                None => {
                    self.run_fleet_serial_into(ids, kernel, tasklets, &cost, &mut out.per_dpu)?;
                }
                Some(fleet) => {
                    let results =
                        Self::run_fleet_parallel(fleet, kernel, tasklets, &cost, workers)?;
                    out.per_dpu.clear();
                    out.per_dpu.extend(results);
                }
            }
        }
        // Deterministic merge in `ids` order. The max over u64 cycles is
        // order-independent, but the f64 energy sum is not — summing in
        // launch order is what keeps the report bit-identical across
        // `host_threads` settings.
        let mut wall = Cycles::ZERO;
        let mut energy = 0.0;
        for (_, stats) in &out.per_dpu {
            wall = wall.max(stats.cycles);
            energy += stats.energy_pj;
        }
        out.wall_cycles = wall;
        out.wall_ns = cost.cycles_to_ns(wall);
        out.energy_pj = energy;
        Ok(())
    }

    /// Serial fleet execution on the calling thread (`host_threads = 1`
    /// and the duplicate-id fallback), writing each DPU's stats in place
    /// over `out`'s recycled entries.
    fn run_fleet_serial_into<K: Kernel + ?Sized>(
        &mut self,
        ids: &[DpuId],
        kernel: &K,
        tasklets: usize,
        cost: &CostModel,
        out: &mut Vec<(DpuId, DpuRunStats)>,
    ) -> Result<()> {
        out.truncate(ids.len());
        out.resize_with(ids.len(), || (DpuId(0), DpuRunStats::default()));
        for (&id, slot) in ids.iter().zip(out.iter_mut()) {
            slot.0 = id;
            let n = self.dpus.len();
            let dpu = self
                .dpus
                .get_mut(id.index())
                .ok_or(SimError::UnknownDpu { id, nr_dpus: n })?;
            dpu.launch_into(kernel, tasklets, cost, &mut slot.1)?;
        }
        Ok(())
    }

    /// Splits the DPU pool into one disjoint `&mut Dpu` per launched id,
    /// tagged with its position in `ids`.
    ///
    /// Returns `Ok(None)` when `ids` contains duplicates (no disjoint
    /// split exists).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`] for the out-of-range id earliest in
    /// `ids`, matching the serial path's error.
    fn disjoint_dpu_refs(&mut self, ids: &[DpuId]) -> Result<Option<Vec<(usize, &mut Dpu)>>> {
        let nr_dpus = self.dpus.len();
        if let Some(&bad) = ids.iter().find(|id| id.index() >= nr_dpus) {
            return Err(SimError::UnknownDpu { id: bad, nr_dpus });
        }
        // Walk the pool in id order, repeatedly splitting off the next
        // launched DPU — each split hands out a `&mut` that cannot alias
        // the remainder.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by_key(|&pos| ids[pos].index());
        let mut fleet = Vec::with_capacity(ids.len());
        let mut rest: &mut [Dpu] = &mut self.dpus;
        let mut consumed = 0usize;
        for &pos in &order {
            let idx = ids[pos].index();
            if idx < consumed {
                return Ok(None); // duplicate id
            }
            let (_, tail) = rest.split_at_mut(idx - consumed);
            let (dpu, tail) = tail.split_first_mut().expect("idx validated in range");
            fleet.push((pos, dpu));
            rest = tail;
            consumed = idx + 1;
        }
        Ok(Some(fleet))
    }

    /// Executes the fleet on `workers` scoped host threads, returning
    /// per-DPU results re-assembled in launch order.
    fn run_fleet_parallel<K: Kernel + ?Sized>(
        mut fleet: Vec<(usize, &mut Dpu)>,
        kernel: &K,
        tasklets: usize,
        cost: &CostModel,
        workers: usize,
    ) -> Result<Vec<(DpuId, DpuRunStats)>> {
        let n = fleet.len();
        let chunk_len = n.div_ceil(workers);
        let worker_outputs: Vec<Vec<(usize, DpuId, Result<DpuRunStats>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = fleet
                    .chunks_mut(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter_mut()
                                .map(|(pos, dpu)| {
                                    (*pos, dpu.id(), dpu.launch(kernel, tasklets, cost))
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("DPU worker thread panicked"))
                    .collect()
            });
        let mut slots: Vec<Option<(DpuId, DpuRunStats)>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, SimError)> = None;
        for (pos, id, result) in worker_outputs.into_iter().flatten() {
            match result {
                Ok(stats) => slots[pos] = Some((id, stats)),
                Err(e) if first_err.as_ref().is_none_or(|(p, _)| pos < *p) => {
                    first_err = Some((pos, e));
                }
                Err(_) => {}
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every launch position filled"))
            .collect())
    }

    /// Launches `kernel` on *all* DPUs.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults.
    pub fn launch_all<K: Kernel + ?Sized>(&mut self, kernel: &K) -> Result<LaunchReport> {
        let ids: Vec<DpuId> = self.dpu_ids().collect();
        self.launch(&ids, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::TaskletCtx;

    struct Nop;
    impl Kernel for Nop {
        fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
            ctx.charge_instrs(10);
            Ok(())
        }
    }

    #[test]
    fn rejects_zero_dpus() {
        assert!(PimSystem::new(PimConfig::new(0, 14)).is_err());
        assert!(PimSystem::new(PimConfig::new(4, 0)).is_err());
        assert!(PimSystem::new(PimConfig::new(4, 25)).is_err());
    }

    #[test]
    fn uniform_scatter_is_parallel_ragged_is_sequential() {
        let mut sys = PimSystem::new(PimConfig::new(4, 14)).unwrap();
        let buf = vec![0u8; 1024];
        let uniform: Vec<(DpuId, u32, &[u8])> =
            (0..4).map(|i| (DpuId(i), 0, buf.as_slice())).collect();
        let r_uniform = sys.scatter(&uniform).unwrap();
        assert!(r_uniform.parallel);

        let small = vec![0u8; 8];
        let ragged: Vec<(DpuId, u32, &[u8])> = vec![
            (DpuId(0), 0, buf.as_slice()),
            (DpuId(1), 0, buf.as_slice()),
            (DpuId(2), 0, buf.as_slice()),
            (DpuId(3), 0, small.as_slice()),
        ];
        let r_ragged = sys.scatter(&ragged).unwrap();
        assert!(!r_ragged.parallel);
        // Sequential 3*1024+8 bytes beats parallel max(1024) in bytes but
        // costs more time.
        assert!(r_ragged.wall_ns > r_uniform.wall_ns);
    }

    #[test]
    fn gather_returns_loaded_data() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        sys.load_mram(DpuId(0), 0, &[1u8; 16]).unwrap();
        sys.load_mram(DpuId(1), 0, &[2u8; 16]).unwrap();
        let (bufs, rep) = sys.gather(&[(DpuId(0), 0, 16), (DpuId(1), 0, 16)]).unwrap();
        assert_eq!(bufs[0], vec![1u8; 16]);
        assert_eq!(bufs[1], vec![2u8; 16]);
        assert!(rep.parallel);
        assert_eq!(rep.bytes, 32);
    }

    #[test]
    fn launch_wall_time_is_max_over_dpus() {
        struct Skewed;
        impl Kernel for Skewed {
            fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
                // dpu0 does 10x the work of dpu1.
                let w = if ctx.dpu_id() == DpuId(0) {
                    10_000
                } else {
                    1_000
                };
                ctx.charge_instrs(w);
                Ok(())
            }
        }
        let mut sys = PimSystem::new(PimConfig::new(2, 14)).unwrap();
        let rep = sys.launch_all(&Skewed).unwrap();
        let c0 = rep.per_dpu[0].1.cycles;
        let c1 = rep.per_dpu[1].1.cycles;
        assert!(c0 > c1);
        assert_eq!(rep.wall_cycles, c0);
        assert!(rep.imbalance() > 1.5);
    }

    #[test]
    fn unknown_dpu_is_reported() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        assert!(matches!(
            sys.load_mram(DpuId(7), 0, &[0u8; 8]),
            Err(SimError::UnknownDpu { .. })
        ));
        // The parallel launch path validates ids up-front and must
        // report the same error as the serial path.
        for threads in [1, 4] {
            let mut sys = PimSystem::new(PimConfig::new(2, 2).with_host_threads(threads)).unwrap();
            assert!(matches!(
                sys.launch(&[DpuId(0), DpuId(9)], &Nop),
                Err(SimError::UnknownDpu {
                    id: DpuId(9),
                    nr_dpus: 2
                })
            ));
        }
    }

    #[test]
    fn rejects_zero_host_threads() {
        assert!(PimSystem::new(PimConfig::new(4, 14).with_host_threads(0)).is_err());
    }

    /// Uniform transfers pay total bytes at parallel bandwidth; ragged
    /// transfers pay total bytes at the degraded serialized bandwidth,
    /// floored by the largest single buffer at parallel bandwidth.
    #[test]
    fn transfer_timing_model_uniform_and_ragged() {
        let cost = CostModel::default();
        let per_byte = cost.host_to_mram_ns_per_byte;
        let mut sys = PimSystem::new(PimConfig::new(4, 14)).unwrap();
        let big = vec![0u8; 1024];
        let small = vec![0u8; 8];

        let uniform: Vec<(DpuId, u32, &[u8])> =
            (0..4).map(|i| (DpuId(i), 0, big.as_slice())).collect();
        let r = sys.scatter(&uniform).unwrap();
        assert!((r.wall_ns - (cost.host_transfer_base_ns + 4096.0 * per_byte)).abs() < 1e-9);

        let ragged: Vec<(DpuId, u32, &[u8])> = vec![
            (DpuId(0), 0, big.as_slice()),
            (DpuId(1), 0, small.as_slice()),
        ];
        let r = sys.scatter(&ragged).unwrap();
        let serialized = 1032.0 * per_byte / cost.ragged_bw_factor;
        assert!((r.wall_ns - (cost.host_transfer_base_ns + serialized)).abs() < 1e-9);
    }

    /// With a (hypothetical) ragged bandwidth factor above 1 the
    /// serialized term can undercut physics; the max-buffer floor must
    /// bind: no schedule finishes before the largest buffer has moved.
    #[test]
    fn ragged_transfer_never_beats_largest_buffer() {
        let cost = CostModel {
            ragged_bw_factor: 100.0,
            ..CostModel::default()
        };
        let per_byte = cost.host_to_mram_ns_per_byte;
        let base = cost.host_transfer_base_ns;
        let mut sys = PimSystem::new(PimConfig {
            nr_dpus: 2,
            cost,
            ..PimConfig::default()
        })
        .unwrap();
        let big = vec![0u8; 2048];
        let small = vec![0u8; 8];
        let ragged: Vec<(DpuId, u32, &[u8])> = vec![
            (DpuId(0), 0, big.as_slice()),
            (DpuId(1), 0, small.as_slice()),
        ];
        let r = sys.scatter(&ragged).unwrap();
        assert!(!r.parallel);
        assert!((r.wall_ns - (base + 2048.0 * per_byte)).abs() < 1e-9);
    }

    /// A kernel whose per-DPU and per-tasklet work is deliberately
    /// skewed and DMA-heavy, to exercise every field of the report.
    struct SkewedWork;
    impl Kernel for SkewedWork {
        fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
            let id = ctx.dpu_id().0 as u64;
            let t = ctx.tasklet_id() as u64;
            let mut buf = [0u8; 64];
            for _ in 0..=(id % 7) {
                ctx.mram_read(((id * 64) % 4096) as u32 & !7, &mut buf)?;
            }
            ctx.charge_instrs(100 + 37 * id + 11 * t);
            ctx.charge_fp32_adds(id * 3);
            Ok(())
        }
        fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
            ctx.charge_instrs(5);
            Ok(())
        }
    }

    /// Tentpole invariant: every field of the LaunchReport is
    /// bit-identical between serial and multi-threaded execution.
    #[test]
    fn parallel_launch_report_is_bit_identical_to_serial() {
        let run = |threads: usize| {
            let mut sys =
                PimSystem::new(PimConfig::new(37, 14).with_host_threads(threads)).unwrap();
            for id in 0..37 {
                sys.load_mram(DpuId(id), 0, &vec![id as u8; 4096]).unwrap();
            }
            sys.launch_all(&SkewedWork).unwrap()
        };
        let serial = run(1);
        for threads in [2, 3, 8, 64] {
            let parallel = run(threads);
            assert_eq!(serial, parallel, "host_threads={threads} diverged");
            assert_eq!(serial.wall_ns.to_bits(), parallel.wall_ns.to_bits());
            assert_eq!(serial.energy_pj.to_bits(), parallel.energy_pj.to_bits());
        }
    }

    /// Launching a strict subset of ids, in scrambled order, must also
    /// be order- and thread-count-stable.
    #[test]
    fn parallel_subset_launch_matches_serial() {
        let ids = [DpuId(5), DpuId(0), DpuId(11), DpuId(3), DpuId(7)];
        let run = |threads: usize| {
            let mut sys = PimSystem::new(PimConfig::new(12, 4).with_host_threads(threads)).unwrap();
            sys.launch(&ids, &SkewedWork).unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        let order: Vec<DpuId> = parallel.per_dpu.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, ids, "per_dpu must stay in launch order");
    }

    /// Duplicate ids cannot be split into disjoint `&mut` chunks; the
    /// launch must still succeed (serial fallback), running the DPU once
    /// per occurrence exactly like `host_threads = 1`.
    #[test]
    fn duplicate_ids_fall_back_to_serial() {
        let ids = [DpuId(1), DpuId(0), DpuId(1)];
        let run = |threads: usize| {
            let mut sys = PimSystem::new(PimConfig::new(2, 2).with_host_threads(threads)).unwrap();
            sys.launch(&ids, &SkewedWork).unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    /// A fault on one DPU surfaces as that DPU's error and must not
    /// poison the other workers (they complete; the system stays usable).
    #[test]
    fn kernel_fault_does_not_poison_other_workers() {
        struct FaultOn3;
        impl Kernel for FaultOn3 {
            fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
                if ctx.dpu_id() == DpuId(3) && ctx.tasklet_id() == 0 {
                    return Err(SimError::KernelFault("dpu3 exploded".into()));
                }
                ctx.charge_instrs(10);
                Ok(())
            }
        }
        for threads in [1, 4] {
            let mut sys = PimSystem::new(PimConfig::new(8, 2).with_host_threads(threads)).unwrap();
            let err = sys.launch_all(&FaultOn3).unwrap_err();
            assert_eq!(err, SimError::KernelFault("dpu3 exploded".into()));
            // The system is not poisoned: a subsequent healthy launch works.
            let rep = sys.launch_all(&Nop).unwrap();
            assert_eq!(rep.per_dpu.len(), 8);
        }
    }

    #[test]
    fn empty_transfer_report_is_zero() {
        let mut sys = PimSystem::new(PimConfig::new(1, 1)).unwrap();
        let rep = sys.scatter(&[]).unwrap();
        assert_eq!(rep.bytes, 0);
        assert_eq!(rep.wall_ns, 0.0);
        let _ = sys.launch(&[], &Nop).unwrap();
    }
}
