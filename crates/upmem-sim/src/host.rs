//! Host-side view of the PIM system: DPU allocation, CPU⇄MRAM transfers
//! and kernel launches.
//!
//! The host CPU is the only communication path between DPUs (paper
//! §2.2) — the API deliberately offers no DPU-to-DPU copy. Transfer
//! timing follows the UPMEM rank rule: per-DPU buffers move in parallel
//! when they all have the same size and serialize otherwise.

use crate::arch::{Cycles, DpuId};
use crate::cost::CostModel;
use crate::dpu::{Dpu, Kernel};
use crate::error::{Result, SimError};
use crate::stats::{LaunchReport, TransferReport};

/// Configuration for a [`PimSystem`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PimConfig {
    /// Number of DPUs in the system (the paper uses 256).
    pub nr_dpus: usize,
    /// Tasklets used per kernel launch (the paper uses 14).
    pub tasklets: usize,
    /// Timing/energy model.
    pub cost: CostModel,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            nr_dpus: crate::arch::DEFAULT_NR_DPUS,
            tasklets: crate::arch::DEFAULT_TASKLETS,
            cost: CostModel::default(),
        }
    }
}

impl PimConfig {
    /// Convenience constructor with default cost model.
    pub fn new(nr_dpus: usize, tasklets: usize) -> Self {
        PimConfig { nr_dpus, tasklets, cost: CostModel::default() }
    }
}

/// A simulated UPMEM system: a pool of DPUs plus the host transfer engine.
#[derive(Debug)]
pub struct PimSystem {
    dpus: Vec<Dpu>,
    config: PimConfig,
}

impl PimSystem {
    /// Builds a system from `config`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the DPU or tasklet count is zero or
    /// the tasklet count exceeds the hardware maximum.
    pub fn new(config: PimConfig) -> Result<Self> {
        if config.nr_dpus == 0 {
            return Err(SimError::InvalidConfig("nr_dpus must be > 0".into()));
        }
        if config.tasklets == 0 || config.tasklets > crate::arch::MAX_TASKLETS {
            return Err(SimError::InvalidConfig(format!(
                "tasklets must be in 1..={}, got {}",
                crate::arch::MAX_TASKLETS,
                config.tasklets
            )));
        }
        let dpus = (0..config.nr_dpus).map(|i| Dpu::new(DpuId(i as u32))).collect();
        Ok(PimSystem { dpus, config })
    }

    /// The system configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Number of DPUs.
    pub fn nr_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// All DPU ids, in order.
    pub fn dpu_ids(&self) -> impl Iterator<Item = DpuId> + '_ {
        self.dpus.iter().map(|d| d.id())
    }

    /// Borrow one DPU.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`] if `id` is out of range.
    pub fn dpu(&self, id: DpuId) -> Result<&Dpu> {
        self.dpus
            .get(id.index())
            .ok_or(SimError::UnknownDpu { id, nr_dpus: self.dpus.len() })
    }

    /// Borrow one DPU mutably.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`] if `id` is out of range.
    pub fn dpu_mut(&mut self, id: DpuId) -> Result<&mut Dpu> {
        let n = self.dpus.len();
        self.dpus
            .get_mut(id.index())
            .ok_or(SimError::UnknownDpu { id, nr_dpus: n })
    }

    /// Untimed host write into a DPU's MRAM — used for loading static
    /// data (embedding tables) during pre-processing, which the paper
    /// does not count toward inference latency.
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn load_mram(&mut self, id: DpuId, addr: u32, data: &[u8]) -> Result<()> {
        self.dpu_mut(id)?.mram_mut().host_write(addr, data)
    }

    /// Timed CPU→MRAM scatter: writes one buffer per `(dpu, addr, data)`
    /// triple (stage 1 of the UpDLRM pipeline).
    ///
    /// Timing: the host bus is shared, so the wall time is the *total*
    /// byte count over the aggregate bandwidth; when buffer sizes differ
    /// the transfers serialize at [`CostModel::ragged_bw_factor`] of the
    /// parallel bandwidth (paper §2.2).
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids; the
    /// system state is unspecified-but-valid if a mid-scatter error
    /// occurs (earlier buffers stay written).
    pub fn scatter(&mut self, transfers: &[(DpuId, u32, &[u8])]) -> Result<TransferReport> {
        for (id, addr, data) in transfers {
            self.dpu_mut(*id)?.mram_mut().host_write(*addr, data)?;
        }
        Ok(self.time_transfer(
            transfers.iter().map(|(_, _, d)| d.len()),
            true,
        ))
    }

    /// Timed CPU→MRAM scatter where each buffer is *broadcast* to a set
    /// of DPUs. The rank interface replicates a broadcast buffer to all
    /// targets in one bus pass, so each group's bytes are charged once
    /// regardless of how many DPUs receive them (UpDLRM uses this to
    /// hand one row partition's reference stream to all of its column
    /// slices).
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn scatter_broadcast(
        &mut self,
        groups: &[(&[DpuId], u32, &[u8])],
    ) -> Result<TransferReport> {
        for (ids, addr, data) in groups {
            for id in ids.iter() {
                self.dpu_mut(*id)?.mram_mut().host_write(*addr, data)?;
            }
        }
        Ok(self.time_transfer(groups.iter().map(|(_, _, d)| d.len()), true))
    }

    /// Timed MRAM→CPU gather: reads `len` bytes at `addr` from each DPU
    /// (stage 3 of the UpDLRM pipeline). Returns one buffer per request
    /// in order.
    ///
    /// # Errors
    ///
    /// Propagates bounds/alignment errors and unknown DPU ids.
    pub fn gather(
        &self,
        requests: &[(DpuId, u32, usize)],
    ) -> Result<(Vec<Vec<u8>>, TransferReport)> {
        let mut out = Vec::with_capacity(requests.len());
        for (id, addr, len) in requests {
            let dpu = self.dpu(*id)?;
            let mut buf = vec![0u8; *len];
            dpu.mram().host_read(*addr, &mut buf)?;
            out.push(buf);
        }
        let report = self.time_transfer(requests.iter().map(|(_, _, l)| *l), false);
        Ok((out, report))
    }

    fn time_transfer(&self, lens: impl Iterator<Item = usize> + Clone, to_mram: bool) -> TransferReport {
        let cost = &self.config.cost;
        let per_byte = if to_mram {
            cost.host_to_mram_ns_per_byte
        } else {
            cost.mram_to_host_ns_per_byte
        };
        let mut total: u64 = 0;
        let mut n = 0usize;
        let mut first: Option<usize> = None;
        let mut uniform = true;
        let mut max_len = 0usize;
        for len in lens {
            total += len as u64;
            n += 1;
            max_len = max_len.max(len);
            match first {
                None => first = Some(len),
                Some(f) if f != len => uniform = false,
                _ => {}
            }
        }
        if n == 0 {
            return TransferReport::default();
        }
        let _ = max_len;
        let wall_ns = if uniform {
            cost.host_transfer_base_ns + total as f64 * per_byte
        } else {
            cost.host_transfer_base_ns + total as f64 * per_byte / cost.ragged_bw_factor
        };
        TransferReport {
            wall_ns,
            bytes: total,
            buffers: n,
            parallel: uniform,
            energy_pj: total as f64 * cost.host_pj_per_byte,
        }
    }

    /// Launches `kernel` on the given DPUs with the configured tasklet
    /// count. DPUs execute in parallel: the report's wall time is the
    /// slowest DPU's time.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults and unknown DPU ids.
    pub fn launch<K: Kernel + ?Sized>(&mut self, ids: &[DpuId], kernel: &K) -> Result<LaunchReport> {
        let tasklets = self.config.tasklets;
        let cost = self.config.cost.clone();
        let mut per_dpu = Vec::with_capacity(ids.len());
        let mut wall = Cycles::ZERO;
        let mut energy = 0.0;
        for &id in ids {
            let dpu = self.dpu_mut(id)?;
            let stats = dpu.launch(kernel, tasklets, &cost)?;
            wall = wall.max(stats.cycles);
            energy += stats.energy_pj;
            per_dpu.push((id, stats));
        }
        Ok(LaunchReport {
            wall_cycles: wall,
            wall_ns: cost.cycles_to_ns(wall),
            per_dpu,
            energy_pj: energy,
        })
    }

    /// Launches `kernel` on *all* DPUs.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults.
    pub fn launch_all<K: Kernel + ?Sized>(&mut self, kernel: &K) -> Result<LaunchReport> {
        let ids: Vec<DpuId> = self.dpu_ids().collect();
        self.launch(&ids, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::TaskletCtx;

    struct Nop;
    impl Kernel for Nop {
        fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
            ctx.charge_instrs(10);
            Ok(())
        }
    }

    #[test]
    fn rejects_zero_dpus() {
        assert!(PimSystem::new(PimConfig::new(0, 14)).is_err());
        assert!(PimSystem::new(PimConfig::new(4, 0)).is_err());
        assert!(PimSystem::new(PimConfig::new(4, 25)).is_err());
    }

    #[test]
    fn uniform_scatter_is_parallel_ragged_is_sequential() {
        let mut sys = PimSystem::new(PimConfig::new(4, 14)).unwrap();
        let buf = vec![0u8; 1024];
        let uniform: Vec<(DpuId, u32, &[u8])> =
            (0..4).map(|i| (DpuId(i), 0, buf.as_slice())).collect();
        let r_uniform = sys.scatter(&uniform).unwrap();
        assert!(r_uniform.parallel);

        let small = vec![0u8; 8];
        let ragged: Vec<(DpuId, u32, &[u8])> = vec![
            (DpuId(0), 0, buf.as_slice()),
            (DpuId(1), 0, buf.as_slice()),
            (DpuId(2), 0, buf.as_slice()),
            (DpuId(3), 0, small.as_slice()),
        ];
        let r_ragged = sys.scatter(&ragged).unwrap();
        assert!(!r_ragged.parallel);
        // Sequential 3*1024+8 bytes beats parallel max(1024) in bytes but
        // costs more time.
        assert!(r_ragged.wall_ns > r_uniform.wall_ns);
    }

    #[test]
    fn gather_returns_loaded_data() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        sys.load_mram(DpuId(0), 0, &[1u8; 16]).unwrap();
        sys.load_mram(DpuId(1), 0, &[2u8; 16]).unwrap();
        let (bufs, rep) = sys.gather(&[(DpuId(0), 0, 16), (DpuId(1), 0, 16)]).unwrap();
        assert_eq!(bufs[0], vec![1u8; 16]);
        assert_eq!(bufs[1], vec![2u8; 16]);
        assert!(rep.parallel);
        assert_eq!(rep.bytes, 32);
    }

    #[test]
    fn launch_wall_time_is_max_over_dpus() {
        struct Skewed;
        impl Kernel for Skewed {
            fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
                // dpu0 does 10x the work of dpu1.
                let w = if ctx.dpu_id() == DpuId(0) { 10_000 } else { 1_000 };
                ctx.charge_instrs(w);
                Ok(())
            }
        }
        let mut sys = PimSystem::new(PimConfig::new(2, 14)).unwrap();
        let rep = sys.launch_all(&Skewed).unwrap();
        let c0 = rep.per_dpu[0].1.cycles;
        let c1 = rep.per_dpu[1].1.cycles;
        assert!(c0 > c1);
        assert_eq!(rep.wall_cycles, c0);
        assert!(rep.imbalance() > 1.5);
    }

    #[test]
    fn unknown_dpu_is_reported() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        assert!(matches!(
            sys.load_mram(DpuId(7), 0, &[0u8; 8]),
            Err(SimError::UnknownDpu { .. })
        ));
    }

    #[test]
    fn empty_transfer_report_is_zero() {
        let mut sys = PimSystem::new(PimConfig::new(1, 1)).unwrap();
        let rep = sys.scatter(&[]).unwrap();
        assert_eq!(rep.bytes, 0);
        assert_eq!(rep.wall_ns, 0.0);
        let _ = sys.launch(&[], &Nop).unwrap();
    }
}
