//! One DPU: tasklets, pipeline timing and kernel execution.
//!
//! Kernels are ordinary Rust values implementing [`Kernel`]. The
//! simulator runs each tasklet's body sequentially (for determinism) but
//! *accounts* time as the hardware would execute them concurrently:
//!
//! * the 11-deep single-issue pipeline retires at most one instruction
//!   per cycle across all tasklets, and a lone tasklet can only issue one
//!   instruction every 11 cycles;
//! * the MRAM DMA engine serializes transfers, overlapping them with
//!   other tasklets' compute;
//! * the modeled launch time is the maximum of the pipeline bound, the
//!   DMA bound, and the slowest single tasklet's serial critical path.

use crate::arch::{Cycles, DpuId, MAX_TASKLETS, PIPELINE_DEPTH, WRAM_CAPACITY};
use crate::cost::CostModel;
use crate::error::{Result, SimError};
use crate::mem::{Mram, Wram};
use crate::stats::{DpuRunStats, TaskletStats};

/// A DPU-side program.
///
/// One kernel value is shared by every tasklet of every launched DPU; the
/// per-tasklet entry point receives a [`TaskletCtx`] identifying which
/// DPU/tasklet is running and mediating all memory access and cycle
/// charging.
///
/// `Sync` is a supertrait because the host may fan a launch out across
/// host threads (see `PimConfig::host_threads`), with every worker
/// reading the same kernel value concurrently. Kernels are plain data in
/// practice (per-DPU task tables built before the launch), so the bound
/// is free. Kernel *results* belong in MRAM/WRAM, but a kernel may own
/// reusable per-DPU scratch buffers behind thread-safe interior
/// mutability (e.g. a per-`DpuId` `Mutex`): all tasklets of one DPU run
/// on one host thread, and concurrent workers only ever touch different
/// DPUs' entries, so such locks are uncontended by construction.
pub trait Kernel: Sync {
    /// Bytes of WRAM reserved as a region shared by all tasklets of a
    /// DPU (e.g. a software row cache). The remainder of WRAM is split
    /// evenly into per-tasklet private regions.
    fn shared_wram_bytes(&self) -> usize {
        0
    }

    /// Runs the kernel body for one tasklet (phase 1).
    ///
    /// # Errors
    ///
    /// Implementations should propagate [`SimError`]s from context
    /// operations and may return [`SimError::KernelFault`] for their own
    /// failures.
    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()>;

    /// Optional second phase, executed after *every* tasklet finished
    /// [`Kernel::run`] — the simulator's equivalent of a hardware
    /// barrier (`barrier_wait` in the UPMEM SDK). Phase-2 cycle costs
    /// are accounted on top of phase 1. The default does nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel::run`].
    fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
        let _ = ctx;
        Ok(())
    }
}

/// Execution context handed to a kernel for one tasklet.
///
/// All MRAM traffic and explicit instruction charges flow through this
/// context; the DPU aggregates the per-tasklet counters into a launch
/// time after every tasklet has run.
#[derive(Debug)]
pub struct TaskletCtx<'a> {
    dpu: DpuId,
    tasklet: usize,
    n_tasklets: usize,
    mram: &'a mut Mram,
    shared: &'a mut [u8],
    local: &'a mut [u8],
    charges: Charges<'a>,
}

/// The cycle/DMA accounting half of a [`TaskletCtx`], separable from
/// the MRAM borrow via [`TaskletCtx::split_reader`] so a kernel can
/// hold zero-copy MRAM views *while* charging for the transfers they
/// stand for. Every charge method is identical to its `TaskletCtx`
/// counterpart — the context just delegates here.
#[derive(Debug)]
pub struct Charges<'a> {
    cost: &'a CostModel,
    stats: TaskletStats,
    /// One-entry memo `(len, dma_cycles, dma_engine_cycles)` for the
    /// dominant same-size DMA charge: embedding kernels issue thousands
    /// of row-sized transfers per launch, and the f64 cost-curve
    /// evaluation would otherwise dwarf the counter update. `len = 0`
    /// is never charged (empty DMAs fault first), so it marks "empty".
    dma_memo: (usize, u64, u64),
    /// Same for vector accumulates of a fixed element count
    /// (`u64::MAX` marks "empty").
    acc_memo: (u64, u64),
    /// Memo for quantized-u8 accumulates, kept separate from
    /// [`Self::acc_memo`] so kernels mixing fp32 cache rows and int8
    /// EMT rows do not thrash a single entry.
    acc_u8_memo: (u64, u64),
}

impl<'a> Charges<'a> {
    fn new(cost: &'a CostModel) -> Self {
        Charges {
            cost,
            stats: TaskletStats::default(),
            dma_memo: (0, 0, 0),
            acc_memo: (u64::MAX, 0),
            acc_u8_memo: (u64::MAX, 0),
        }
    }

    /// Charges one DMA transfer of `len` bytes.
    #[inline]
    pub fn charge_dma(&mut self, len: usize) {
        if self.dma_memo.0 != len {
            self.dma_memo = (
                len,
                self.cost.dma_cycles(len).0,
                self.cost.dma_engine_cycles(len).0,
            );
        }
        self.stats.dma_cycles += self.dma_memo.1;
        self.stats.dma_engine_cycles += self.dma_memo.2;
        self.stats.dma_transfers += 1;
        self.stats.dma_bytes += len as u64;
        // Issuing a DMA costs a few pipeline instructions (address setup).
        self.stats.instrs += 4 * self.cost.int_op_cycles;
    }

    /// Charges `n` identical DMA transfers of `len` bytes each. Every
    /// counter increment of [`Charges::charge_dma`] is an integer, so
    /// one multiplied charge equals `n` repeated charges exactly —
    /// kernels whose inner loop issues only same-shaped transfers can
    /// hoist the charging out of the loop without moving modeled time.
    #[inline]
    pub fn charge_dma_repeat(&mut self, len: usize, n: u64) {
        if n == 0 {
            return;
        }
        if self.dma_memo.0 != len {
            self.dma_memo = (
                len,
                self.cost.dma_cycles(len).0,
                self.cost.dma_engine_cycles(len).0,
            );
        }
        self.stats.dma_cycles += n * self.dma_memo.1;
        self.stats.dma_engine_cycles += n * self.dma_memo.2;
        self.stats.dma_transfers += n;
        self.stats.dma_bytes += n * len as u64;
        self.stats.instrs += n * 4 * self.cost.int_op_cycles;
    }

    /// Charges `n` generic pipeline instructions (1 cycle slots each).
    #[inline]
    pub fn charge_instrs(&mut self, n: u64) {
        self.stats.instrs += n;
    }

    /// Charges `n` native 32-bit integer ALU operations.
    #[inline]
    pub fn charge_int_ops(&mut self, n: u64) {
        self.stats.instrs += n * self.cost.int_op_cycles;
    }

    /// Charges `n` software-emulated fp32 additions.
    #[inline]
    pub fn charge_fp32_adds(&mut self, n: u64) {
        self.stats.instrs += n * self.cost.fp32_add_cycles;
    }

    /// Charges one vector-accumulate of `n_elems` elements.
    #[inline]
    pub fn charge_accumulate(&mut self, n_elems: u64) {
        if self.acc_memo.0 != n_elems {
            self.acc_memo = (
                n_elems,
                self.cost.accumulate_base_instrs
                    + (self.cost.accumulate_per_elem_instrs * n_elems as f64).round() as u64,
            );
        }
        self.stats.instrs += self.acc_memo.1;
    }

    /// Charges `n` vector-accumulates of `n_elems` elements each —
    /// the multiplied form of [`Charges::charge_accumulate`] (integer
    /// increments, so exactly `n` repeated charges).
    #[inline]
    pub fn charge_accumulate_repeat(&mut self, n_elems: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.acc_memo.0 != n_elems {
            self.acc_memo = (
                n_elems,
                self.cost.accumulate_base_instrs
                    + (self.cost.accumulate_per_elem_instrs * n_elems as f64).round() as u64,
            );
        }
        self.stats.instrs += n * self.acc_memo.1;
    }

    /// Charges one dequantizing vector-accumulate of `n_elems`
    /// quantized-u8 elements.
    #[inline]
    pub fn charge_accumulate_u8(&mut self, n_elems: u64) {
        if self.acc_u8_memo.0 != n_elems {
            self.acc_u8_memo = (
                n_elems,
                self.cost.accumulate_base_instrs
                    + (self.cost.accumulate_per_elem_instrs_u8 * n_elems as f64).round() as u64,
            );
        }
        self.stats.instrs += self.acc_u8_memo.1;
    }

    /// Charges `n` dequantizing vector-accumulates of `n_elems`
    /// elements each — the multiplied form of
    /// [`Charges::charge_accumulate_u8`].
    #[inline]
    pub fn charge_accumulate_u8_repeat(&mut self, n_elems: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.acc_u8_memo.0 != n_elems {
            self.acc_u8_memo = (
                n_elems,
                self.cost.accumulate_base_instrs
                    + (self.cost.accumulate_per_elem_instrs_u8 * n_elems as f64).round() as u64,
            );
        }
        self.stats.instrs += n * self.acc_u8_memo.1;
    }

    /// Charges loop bookkeeping for `iters` iterations.
    #[inline]
    pub fn charge_loop(&mut self, iters: u64) {
        self.stats.instrs += iters * self.cost.loop_overhead_instrs;
    }
}

/// Read-only zero-copy window over the committed prefix of one DPU's
/// MRAM bank, obtained from [`TaskletCtx::split_reader`]. Unlike the
/// context methods, views taken here stay alive across further reads
/// and across [`Charges`] calls — multiple immutable borrows coexist.
///
/// The reader spans `[0, end)` bytes fixed at split time; requests
/// beyond that error instead of zero-extending (use
/// [`TaskletCtx::mram_read`] for reads past the planned layout).
#[derive(Debug, Clone, Copy)]
pub struct MramReader<'a> {
    data: &'a [u8],
}

impl<'a> MramReader<'a> {
    /// Borrows one DMA transfer's window: same alignment and size rules
    /// as [`Mram::check_dma`]. Charging is the caller's job
    /// ([`Charges::charge_dma`] with the same `len`).
    ///
    /// # Errors
    ///
    /// Unaligned/oversized requests and requests past the reader's end.
    #[inline]
    pub fn dma(&self, addr: u32, len: usize) -> Result<&'a [u8]> {
        if len > crate::arch::DMA_MAX_TRANSFER {
            return Err(SimError::DmaTooLarge { len });
        }
        self.window(addr, len)
    }

    /// Borrows an aligned span that may exceed the single-transfer DMA
    /// limit — the backing store is contiguous, so a multi-chunk read
    /// needs only one borrow. The caller must charge the same chunk
    /// series the copying path would ([`Charges::charge_dma`] per
    /// `DMA_MAX_TRANSFER`-sized chunk).
    ///
    /// # Errors
    ///
    /// Unaligned requests and requests past the reader's end.
    #[inline]
    pub fn window(&self, addr: u32, len: usize) -> Result<&'a [u8]> {
        let start = addr as usize;
        if !start.is_multiple_of(crate::arch::DMA_ALIGN)
            || !len.is_multiple_of(crate::arch::DMA_ALIGN)
        {
            return Err(SimError::UnalignedDma { addr, len });
        }
        let end = start + len;
        if end > self.data.len() {
            return Err(SimError::MramOutOfBounds {
                addr,
                len,
                capacity: self.data.len(),
            });
        }
        Ok(&self.data[start..end])
    }

    /// Borrows everything from DMA-aligned `addr` to the reader's end —
    /// a region base for kernels that index fixed-stride rows directly
    /// (each row access then needs only a range check against this
    /// slice). Per-row charging stays the caller's job. An `addr` at or
    /// past the end yields an empty slice: the caller's row bounds
    /// check reports the miss with the row's own address.
    ///
    /// # Errors
    ///
    /// Unaligned `addr`.
    #[inline]
    pub fn tail(&self, addr: u32) -> Result<&'a [u8]> {
        let start = addr as usize;
        if !start.is_multiple_of(crate::arch::DMA_ALIGN) {
            return Err(SimError::UnalignedDma { addr, len: 0 });
        }
        Ok(&self.data[start.min(self.data.len())..])
    }

    /// Total committed bytes visible to this reader.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the reader sees no committed bytes at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<'a> TaskletCtx<'a> {
    /// The DPU this tasklet runs on.
    #[inline]
    pub fn dpu_id(&self) -> DpuId {
        self.dpu
    }

    /// This tasklet's index in `0..n_tasklets`.
    #[inline]
    pub fn tasklet_id(&self) -> usize {
        self.tasklet
    }

    /// Number of tasklets in the launch.
    #[inline]
    pub fn n_tasklets(&self) -> usize {
        self.n_tasklets
    }

    /// The cost model in effect (read-only).
    #[inline]
    pub fn cost(&self) -> &CostModel {
        self.charges.cost
    }

    /// Splits this context into a read-only MRAM window over the first
    /// `end` bytes plus the charge counters — disjoint borrows, so a
    /// kernel can keep rows, reference streams and offset arrays
    /// borrowed from MRAM *simultaneously* while charging for the
    /// transfers they stand for. The bank is grown (with zeros) to
    /// `end` once up front, exactly like a read of never-written MRAM.
    ///
    /// Charges issued through the returned [`Charges`] are identical to
    /// the context's own methods; a kernel using `dma`/`window` plus
    /// the matching `charge_dma` calls is indistinguishable in modeled
    /// time from one using [`TaskletCtx::mram_read`].
    #[inline]
    pub fn split_reader(&mut self, end: usize) -> (MramReader<'_>, &mut Charges<'a>) {
        (
            MramReader {
                data: self.mram.frozen(end),
            },
            &mut self.charges,
        )
    }

    /// Like [`TaskletCtx::split_reader`], but also hands out the shared
    /// WRAM region — for barrier-phase kernels that accumulate borrowed
    /// MRAM rows directly into shared accumulators.
    #[inline]
    pub fn split_reader_shared(
        &mut self,
        end: usize,
    ) -> (MramReader<'_>, &mut [u8], &mut Charges<'a>) {
        (
            MramReader {
                data: self.mram.frozen(end),
            },
            self.shared,
            &mut self.charges,
        )
    }

    /// DMA read from MRAM into a caller buffer, charging DMA latency.
    ///
    /// # Errors
    ///
    /// Propagates alignment/size/bounds violations from [`Mram`].
    #[inline]
    pub fn mram_read(&mut self, addr: u32, buf: &mut [u8]) -> Result<()> {
        self.mram.dma_read(addr, buf)?;
        self.charges.charge_dma(buf.len());
        Ok(())
    }

    /// Zero-copy DMA read: borrows the MRAM window directly instead of
    /// copying it into a caller buffer, with identical validation and
    /// identical DMA charges to [`TaskletCtx::mram_read`] — modeled
    /// time cannot tell the two apart; only the simulator's host-side
    /// wall clock changes. The borrow ends at the next `&mut` context
    /// call, so the pattern is fetch, consume, then charge.
    ///
    /// # Errors
    ///
    /// Propagates alignment/size/bounds violations from [`Mram`].
    #[inline]
    pub fn mram_view(&mut self, addr: u32, len: usize) -> Result<&[u8]> {
        Mram::check_dma(addr, len)?;
        self.charges.charge_dma(len);
        self.mram.dma_view(addr, len)
    }

    /// DMA write from a caller buffer into MRAM, charging DMA latency.
    ///
    /// # Errors
    ///
    /// Propagates alignment/size/bounds violations from [`Mram`].
    #[inline]
    pub fn mram_write(&mut self, addr: u32, buf: &[u8]) -> Result<()> {
        self.mram.dma_write(addr, buf)?;
        self.charges.charge_dma(buf.len());
        Ok(())
    }

    /// Zero-copy DMA write: borrows a writable MRAM window so the
    /// kernel serializes its result in place, with identical validation
    /// and identical DMA charges to [`TaskletCtx::mram_write`] —
    /// modeled time cannot tell the two apart. The caller must fill
    /// the whole window (it is the bytes "transferred" by the DMA).
    ///
    /// # Errors
    ///
    /// Propagates alignment/size/bounds violations from [`Mram`].
    #[inline]
    pub fn mram_view_mut(&mut self, addr: u32, len: usize) -> Result<&mut [u8]> {
        Mram::check_dma(addr, len)?;
        self.charges.charge_dma(len);
        self.mram.dma_view_mut(addr, len)
    }

    /// DMA write sourced from the shared-WRAM region: copies
    /// `len` bytes at `shared_off` straight into MRAM without the
    /// caller staging them in a private buffer first (the two regions
    /// live behind the same `&mut self`, so a plain
    /// [`TaskletCtx::mram_write`] would force that extra copy).
    /// Validation and charges are identical to `mram_write`.
    ///
    /// # Errors
    ///
    /// Propagates alignment/size/bounds violations from [`Mram`].
    #[inline]
    pub fn mram_write_from_shared(
        &mut self,
        addr: u32,
        shared_off: usize,
        len: usize,
    ) -> Result<()> {
        self.mram
            .dma_write(addr, &self.shared[shared_off..shared_off + len])?;
        self.charges.charge_dma(len);
        Ok(())
    }

    /// Charges `n` generic pipeline instructions (1 cycle slots each).
    #[inline]
    pub fn charge_instrs(&mut self, n: u64) {
        self.charges.charge_instrs(n);
    }

    /// Charges `n` native 32-bit integer ALU operations.
    #[inline]
    pub fn charge_int_ops(&mut self, n: u64) {
        self.charges.charge_int_ops(n);
    }

    /// Charges `n` software-emulated fp32 additions (the DPU has no FPU).
    #[inline]
    pub fn charge_fp32_adds(&mut self, n: u64) {
        self.charges.charge_fp32_adds(n);
    }

    /// Charges one vector-accumulate of `n_elems` elements: a fixed
    /// parse/address/branch cost plus packed-add work (two 32-bit lanes
    /// per instruction — embedding accumulation uses the DPU's native
    /// 64-bit integer path on fixed-point lanes).
    #[inline]
    pub fn charge_accumulate(&mut self, n_elems: u64) {
        self.charges.charge_accumulate(n_elems);
    }

    /// Charges one *dequantizing* vector-accumulate of `n_elems`
    /// quantized-u8 elements: same fixed cost as
    /// [`Self::charge_accumulate`], but the per-element slope uses
    /// [`CostModel::accumulate_per_elem_instrs_u8`] — eight 8-bit lanes
    /// unpack per 64-bit load, so the fused dequantize-accumulate loop
    /// retires fewer instructions per element than the fp32 path.
    #[inline]
    pub fn charge_accumulate_u8(&mut self, n_elems: u64) {
        self.charges.charge_accumulate_u8(n_elems);
    }

    /// Charges loop bookkeeping for `iters` iterations of an
    /// embedding-style loop (address computation, compare, branch).
    #[inline]
    pub fn charge_loop(&mut self, iters: u64) {
        self.charges.charge_loop(iters);
    }

    /// The WRAM region shared by all tasklets of this DPU.
    #[inline]
    pub fn shared_wram(&mut self) -> &mut [u8] {
        self.shared
    }

    /// This tasklet's private WRAM region.
    #[inline]
    pub fn local_wram(&mut self) -> &mut [u8] {
        self.local
    }

    /// Counters accumulated so far (mainly for tests).
    #[inline]
    pub fn stats(&self) -> &TaskletStats {
        &self.charges.stats
    }
}

/// One simulated DPU: 64 MB MRAM + 64 KB WRAM plus launch accounting.
#[derive(Debug)]
pub struct Dpu {
    id: DpuId,
    mram: Mram,
    wram: Wram,
}

impl Dpu {
    /// Creates a DPU with empty memories.
    pub fn new(id: DpuId) -> Self {
        Dpu {
            id,
            mram: Mram::new(),
            wram: Wram::new(),
        }
    }

    /// This DPU's identifier.
    pub fn id(&self) -> DpuId {
        self.id
    }

    /// Immutable access to the MRAM bank (host-side use).
    pub fn mram(&self) -> &Mram {
        &self.mram
    }

    /// Mutable access to the MRAM bank (host-side use).
    pub fn mram_mut(&mut self) -> &mut Mram {
        &mut self.mram
    }

    /// Runs `kernel` with `n_tasklets` tasklets and returns the modeled
    /// launch statistics.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] if `n_tasklets` is 0 or exceeds
    ///   [`MAX_TASKLETS`].
    /// * [`SimError::WramExhausted`] if the kernel's shared region leaves
    ///   no per-tasklet WRAM.
    /// * Any error returned by the kernel body.
    pub fn launch<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        n_tasklets: usize,
        cost: &CostModel,
    ) -> Result<DpuRunStats> {
        let mut out = DpuRunStats::default();
        self.launch_into(kernel, n_tasklets, cost, &mut out)?;
        Ok(out)
    }

    /// Like [`Dpu::launch`], but writes the statistics into a
    /// caller-owned `out`, reusing its `per_tasklet` capacity. The
    /// steady-state serving path calls this once per DPU per batch; with
    /// a warm `out` it performs no heap allocation (per-tasklet phase
    /// counters live on the stack, sized by [`MAX_TASKLETS`]).
    ///
    /// On error `out` is left in an unspecified (but valid) state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dpu::launch`].
    pub fn launch_into<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        n_tasklets: usize,
        cost: &CostModel,
        out: &mut DpuRunStats,
    ) -> Result<()> {
        if n_tasklets == 0 || n_tasklets > MAX_TASKLETS {
            return Err(SimError::InvalidConfig(format!(
                "tasklets must be in 1..={MAX_TASKLETS}, got {n_tasklets}"
            )));
        }
        let shared_len = kernel.shared_wram_bytes();
        if shared_len >= WRAM_CAPACITY {
            return Err(SimError::WramExhausted {
                requested: shared_len,
                available: WRAM_CAPACITY,
            });
        }
        let local_len = (WRAM_CAPACITY - shared_len) / n_tasklets;
        if local_len == 0 {
            return Err(SimError::WramExhausted {
                requested: shared_len + n_tasklets,
                available: WRAM_CAPACITY,
            });
        }

        // Split WRAM: [shared | t0 local | t1 local | ...]. Tasklets run
        // sequentially, so re-borrowing per tasklet is safe and keeps the
        // shared region's contents visible across tasklets. Phase 2
        // (`finalize`) starts only after every tasklet completed phase 1
        // — the hardware barrier.
        let mut phase1 = [TaskletStats::default(); MAX_TASKLETS];
        let mut phase2 = [TaskletStats::default(); MAX_TASKLETS];
        for (phase, stats) in [(0usize, &mut phase1), (1, &mut phase2)] {
            for (t, slot) in stats.iter_mut().enumerate().take(n_tasklets) {
                let (shared, rest) = self
                    .wram
                    .slice_mut(0, WRAM_CAPACITY)?
                    .split_at_mut(shared_len);
                let local = &mut rest[t * local_len..(t + 1) * local_len];
                let mut ctx = TaskletCtx {
                    dpu: self.id,
                    tasklet: t,
                    n_tasklets,
                    mram: &mut self.mram,
                    shared,
                    local,
                    charges: Charges::new(cost),
                };
                if phase == 0 {
                    kernel.run(&mut ctx)?;
                } else {
                    kernel.finalize(&mut ctx)?;
                }
                *slot = ctx.charges.stats;
            }
        }

        // The barrier means phase times add up; the launch overhead is
        // charged once.
        let no_overhead = CostModel {
            launch_overhead_cycles: 0,
            ..cost.clone()
        };
        let p1 = Self::account(&phase1[..n_tasklets], cost);
        let p2 = Self::account(&phase2[..n_tasklets], &no_overhead);
        out.cycles = p1.cycles + p2.cycles;
        out.totals = p1.totals;
        out.totals.merge(&p2.totals);
        out.per_tasklet.clear();
        out.per_tasklet.extend_from_slice(&phase1[..n_tasklets]);
        for (a, b) in out.per_tasklet.iter_mut().zip(&phase2[..n_tasklets]) {
            a.merge(b);
        }
        out.energy_pj = p1.energy_pj + p2.energy_pj;
        Ok(())
    }

    /// Aggregates per-tasklet counters into a modeled launch time.
    fn account(per_tasklet: &[TaskletStats], cost: &CostModel) -> PhaseAccount {
        let mut totals = TaskletStats::default();
        for t in per_tasklet {
            totals.merge(t);
        }
        // Bound 1: pipeline throughput — one instruction per cycle total.
        let pipeline_bound = totals.instrs;
        // Bound 2: MRAM DMA engine — transfers serialize, but setup
        // latency overlaps across queued transfers (occupancy view).
        let dma_bound = totals.dma_engine_cycles;
        // Bound 3: slowest tasklet's serial path — a lone tasklet issues
        // one instruction every PIPELINE_DEPTH cycles and waits for its
        // own DMAs.
        let serial_bound = per_tasklet
            .iter()
            .map(|t| t.instrs * PIPELINE_DEPTH + t.dma_cycles)
            .max()
            .unwrap_or(0);
        let cycles = Cycles(
            pipeline_bound
                .max(dma_bound)
                .max(serial_bound)
                .saturating_add(cost.launch_overhead_cycles),
        );
        let energy_pj =
            totals.instrs as f64 * cost.instr_pj + totals.dma_bytes as f64 * cost.dma_pj_per_byte;
        PhaseAccount {
            cycles,
            totals,
            energy_pj,
        }
    }
}

/// Aggregated counters for one barrier phase of a launch.
struct PhaseAccount {
    cycles: Cycles,
    totals: TaskletStats,
    energy_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernel that reads `reads` rows of `row_bytes` each and charges a
    /// fixed amount of compute per read.
    struct ReadLoop {
        reads: u32,
        row_bytes: usize,
        instrs_per_read: u64,
    }

    impl Kernel for ReadLoop {
        fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
            let per = self.reads as usize / ctx.n_tasklets();
            let mut buf = vec![0u8; self.row_bytes];
            for i in 0..per {
                ctx.mram_read((i * self.row_bytes) as u32 & !7, &mut buf)?;
                ctx.charge_instrs(self.instrs_per_read);
            }
            Ok(())
        }
    }

    #[test]
    fn launch_rejects_bad_tasklet_count() {
        let mut d = Dpu::new(DpuId(0));
        let k = ReadLoop {
            reads: 0,
            row_bytes: 8,
            instrs_per_read: 1,
        };
        assert!(d.launch(&k, 0, &CostModel::default()).is_err());
        assert!(d
            .launch(&k, MAX_TASKLETS + 1, &CostModel::default())
            .is_err());
    }

    #[test]
    fn more_tasklets_hide_dma_latency() {
        // With 1 tasklet every DMA is exposed serially; with 14 the DMA
        // engine bound (sum of transfer costs) dominates, which is lower
        // than the serial bound because compute overlaps.
        let cost = CostModel::default();
        let k = ReadLoop {
            reads: 1400,
            row_bytes: 64,
            instrs_per_read: 40,
        };
        let mut d1 = Dpu::new(DpuId(0));
        let s1 = d1.launch(&k, 1, &cost).unwrap();
        let mut d14 = Dpu::new(DpuId(1));
        let s14 = d14.launch(&k, 14, &cost).unwrap();
        assert!(
            s14.cycles.0 * 3 < s1.cycles.0,
            "14 tasklets should be much faster: {} vs {}",
            s14.cycles,
            s1.cycles
        );
    }

    #[test]
    fn accounting_uses_max_of_bounds() {
        let cost = CostModel {
            launch_overhead_cycles: 0,
            ..CostModel::default()
        };
        // Compute-heavy kernel: pipeline bound dominates.
        let heavy = vec![
            TaskletStats {
                instrs: 10_000,
                dma_cycles: 10,
                ..Default::default()
            };
            14
        ];
        let s = Dpu::account(&heavy, &cost);
        assert_eq!(s.cycles.0, 14 * 10_000);
        // DMA-heavy kernel: DMA engine occupancy bound dominates.
        let dma = vec![
            TaskletStats {
                instrs: 10,
                dma_cycles: 12_000,
                dma_engine_cycles: 10_000,
                ..Default::default()
            };
            14
        ];
        let s = Dpu::account(&dma, &cost);
        assert_eq!(s.cycles.0, 14 * 10_000);
        // Single tasklet: serial bound dominates.
        let single = vec![TaskletStats {
            instrs: 1_000,
            dma_cycles: 5_000,
            ..Default::default()
        }];
        let s = Dpu::account(&single, &cost);
        assert_eq!(s.cycles.0, 1_000 * PIPELINE_DEPTH + 5_000);
    }

    #[test]
    fn kernel_results_are_functional() {
        // Data written by the host is what the kernel reads back.
        struct Sum8 {
            expect: [u8; 8],
        }
        impl Kernel for Sum8 {
            fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
                if ctx.tasklet_id() != 0 {
                    return Ok(());
                }
                let mut buf = [0u8; 8];
                ctx.mram_read(0, &mut buf)?;
                if buf != self.expect {
                    return Err(SimError::KernelFault("mismatch".into()));
                }
                Ok(())
            }
        }
        let mut d = Dpu::new(DpuId(3));
        d.mram_mut()
            .host_write(0, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        let k = Sum8 {
            expect: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        d.launch(&k, 2, &CostModel::default()).unwrap();
    }

    #[test]
    fn shared_wram_persists_across_tasklets() {
        struct Chain;
        impl Kernel for Chain {
            fn shared_wram_bytes(&self) -> usize {
                8
            }
            fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
                let t = ctx.tasklet_id() as u8;
                let shared = ctx.shared_wram();
                if t == 0 {
                    shared[0] = 41;
                } else if shared[0] != 41 {
                    return Err(SimError::KernelFault("shared region lost".into()));
                }
                Ok(())
            }
        }
        let mut d = Dpu::new(DpuId(0));
        d.launch(&Chain, 4, &CostModel::default()).unwrap();
    }

    #[test]
    fn shared_wram_cannot_consume_everything() {
        struct Greedy;
        impl Kernel for Greedy {
            fn shared_wram_bytes(&self) -> usize {
                WRAM_CAPACITY
            }
            fn run(&self, _ctx: &mut TaskletCtx<'_>) -> Result<()> {
                Ok(())
            }
        }
        let mut d = Dpu::new(DpuId(0));
        assert!(matches!(
            d.launch(&Greedy, 1, &CostModel::default()),
            Err(SimError::WramExhausted { .. })
        ));
    }

    #[test]
    fn energy_scales_with_work() {
        let cost = CostModel::default();
        let small = ReadLoop {
            reads: 140,
            row_bytes: 32,
            instrs_per_read: 10,
        };
        let large = ReadLoop {
            reads: 1400,
            row_bytes: 32,
            instrs_per_read: 10,
        };
        let e_small = Dpu::new(DpuId(0))
            .launch(&small, 14, &cost)
            .unwrap()
            .energy_pj;
        let e_large = Dpu::new(DpuId(1))
            .launch(&large, 14, &cost)
            .unwrap()
            .energy_pj;
        assert!(e_large > e_small * 8.0);
    }
}
