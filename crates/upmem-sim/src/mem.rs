//! Functional memory components of one DPU: the 64 MB MRAM bank and the
//! 64 KB WRAM scratchpad.
//!
//! Both memories hold real bytes — kernels running on the simulator
//! compute real results, which downstream crates check against a pure-CPU
//! reference. MRAM storage is grown on demand so that simulating 256 DPUs
//! does not eagerly commit 16 GB of host memory.

use crate::arch::{DMA_ALIGN, DMA_MAX_TRANSFER, MRAM_CAPACITY, WRAM_CAPACITY};
use crate::error::{Result, SimError};

/// One DPU's 64 MB DRAM bank.
///
/// All accesses go through DMA-shaped read/write methods that enforce the
/// hardware's alignment (8 B) and size (≤ 2048 B) rules. The backing
/// storage grows lazily up to [`MRAM_CAPACITY`].
#[derive(Debug, Clone, Default)]
pub struct Mram {
    data: Vec<u8>,
}

impl Mram {
    /// Creates an empty MRAM bank.
    pub fn new() -> Self {
        Mram { data: Vec::new() }
    }

    /// Bytes currently committed (high-water mark of writes).
    pub fn committed(&self) -> usize {
        self.data.len()
    }

    /// Validates a DMA request against alignment, size and capacity rules.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SimError`] for an empty, unaligned,
    /// oversized or out-of-bounds transfer.
    #[inline]
    pub fn check_dma(addr: u32, len: usize) -> Result<()> {
        if len == 0 {
            return Err(SimError::EmptyDma);
        }
        if len > DMA_MAX_TRANSFER {
            return Err(SimError::DmaTooLarge { len });
        }
        if !(addr as usize).is_multiple_of(DMA_ALIGN) || !len.is_multiple_of(DMA_ALIGN) {
            return Err(SimError::UnalignedDma { addr, len });
        }
        let end = addr as usize + len;
        if end > MRAM_CAPACITY {
            return Err(SimError::MramOutOfBounds {
                addr,
                len,
                capacity: MRAM_CAPACITY,
            });
        }
        Ok(())
    }

    #[inline]
    fn ensure(&mut self, end: usize) {
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
    }

    /// DMA read of `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Fails if the transfer violates DMA rules (see [`Mram::check_dma`]).
    #[inline]
    pub fn dma_read(&self, addr: u32, buf: &mut [u8]) -> Result<()> {
        Self::check_dma(addr, buf.len())?;
        let start = addr as usize;
        let end = start + buf.len();
        if end <= self.data.len() {
            buf.copy_from_slice(&self.data[start..end]);
        } else if start >= self.data.len() {
            buf.fill(0);
        } else {
            let n = self.data.len() - start;
            buf[..n].copy_from_slice(&self.data[start..]);
            buf[n..].fill(0);
        }
        Ok(())
    }

    /// Zero-copy DMA read: borrows `len` bytes at `addr` directly from
    /// the backing store, growing it with zeros when the window extends
    /// past the high-water mark (never-written MRAM reads as zeros,
    /// exactly like [`Mram::dma_read`]). Validation and failure modes
    /// are identical to `dma_read` — only the host-side copy is skipped.
    ///
    /// # Errors
    ///
    /// Fails if the transfer violates DMA rules (see [`Mram::check_dma`]).
    #[inline]
    pub fn dma_view(&mut self, addr: u32, len: usize) -> Result<&[u8]> {
        Self::check_dma(addr, len)?;
        let start = addr as usize;
        self.ensure(start + len);
        Ok(&self.data[start..start + len])
    }

    /// Mutable zero-copy DMA window: borrows `len` writable bytes at
    /// `addr` so a kernel can serialize its result in place instead of
    /// staging it in a scratch buffer and copying. Validation and
    /// failure modes are identical to [`Mram::dma_write`].
    ///
    /// # Errors
    ///
    /// Fails if the transfer violates DMA rules (see [`Mram::check_dma`]).
    #[inline]
    pub fn dma_view_mut(&mut self, addr: u32, len: usize) -> Result<&mut [u8]> {
        Self::check_dma(addr, len)?;
        let start = addr as usize;
        self.ensure(start + len);
        Ok(&mut self.data[start..start + len])
    }

    /// Grows the bank (with zeros) to at least `end` bytes and returns
    /// the whole committed prefix as an immutable slice — the backing
    /// store for a `MramReader` split (never-written MRAM reads as
    /// zeros, exactly like [`Mram::dma_read`]).
    #[inline]
    pub fn frozen(&mut self, end: usize) -> &[u8] {
        self.ensure(end.min(MRAM_CAPACITY));
        &self.data
    }

    /// Host-side pre-commit: eagerly backs the first `end` bytes of the
    /// bank (clamped to [`MRAM_CAPACITY`]) with zeroed storage. Purely a
    /// simulator-host optimization — committing a planned layout up
    /// front avoids repeated `Vec` regrowth (and whole-bank memcpys)
    /// while the first launches push the high-water mark outward.
    /// Functionally a no-op: unwritten MRAM reads as zeros either way.
    pub fn commit(&mut self, end: usize) {
        self.ensure(end.min(MRAM_CAPACITY));
    }

    /// DMA write of `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the transfer violates DMA rules (see [`Mram::check_dma`]).
    #[inline]
    pub fn dma_write(&mut self, addr: u32, buf: &[u8]) -> Result<()> {
        Self::check_dma(addr, buf.len())?;
        let start = addr as usize;
        self.ensure(start + buf.len());
        self.data[start..start + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Host-side bulk write (CPU→MRAM), free of per-DMA size limits but
    /// still 8-byte aligned and bounded by capacity.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-bounds writes.
    pub fn host_write(&mut self, addr: u32, buf: &[u8]) -> Result<()> {
        if !(addr as usize).is_multiple_of(DMA_ALIGN) {
            return Err(SimError::UnalignedDma {
                addr,
                len: buf.len(),
            });
        }
        let end = addr as usize + buf.len();
        if end > MRAM_CAPACITY {
            return Err(SimError::MramOutOfBounds {
                addr,
                len: buf.len(),
                capacity: MRAM_CAPACITY,
            });
        }
        self.ensure(end);
        self.data[addr as usize..end].copy_from_slice(buf);
        Ok(())
    }

    /// Host-side bulk read (MRAM→CPU).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-bounds reads.
    pub fn host_read(&self, addr: u32, buf: &mut [u8]) -> Result<()> {
        if !(addr as usize).is_multiple_of(DMA_ALIGN) {
            return Err(SimError::UnalignedDma {
                addr,
                len: buf.len(),
            });
        }
        let start = addr as usize;
        let end = start + buf.len();
        if end > MRAM_CAPACITY {
            return Err(SimError::MramOutOfBounds {
                addr,
                len: buf.len(),
                capacity: MRAM_CAPACITY,
            });
        }
        if end <= self.data.len() {
            buf.copy_from_slice(&self.data[start..end]);
        } else if start >= self.data.len() {
            buf.fill(0);
        } else {
            let n = self.data.len() - start;
            buf[..n].copy_from_slice(&self.data[start..]);
            buf[n..].fill(0);
        }
        Ok(())
    }
}

/// Sequential MRAM region planner: hands out 8-byte-aligned,
/// non-overlapping base addresses inside one DPU's 64 MB bank.
///
/// Hosts lay their MRAM image out as a sequence of named regions (EMT
/// tile, cache rows, per-batch staging slots). This helper centralizes
/// the two rules every such layout must obey — DMA alignment
/// ([`DMA_ALIGN`]) and the capacity ceiling ([`MRAM_CAPACITY`]) — so a
/// region that does not fit surfaces as an error at *planning* time
/// instead of as a mid-batch DMA fault. Reserving a region commits
/// nothing; the bank still grows lazily on first write.
///
/// ```rust
/// use upmem_sim::MramLayout;
/// let mut layout = MramLayout::new();
/// let emt = layout.reserve(1 << 20).unwrap();
/// let slot0 = layout.reserve(4096).unwrap();
/// let slot1 = layout.reserve(4096).unwrap();
/// assert_eq!(emt, 0);
/// assert!(slot0 < slot1 && (slot1 as usize).is_multiple_of(8));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MramLayout {
    next: usize,
}

impl MramLayout {
    /// An empty layout starting at address 0.
    pub fn new() -> Self {
        MramLayout { next: 0 }
    }

    /// Reserves `bytes` (rounded up to [`DMA_ALIGN`]) and returns the
    /// region's base address. Zero-byte regions are legal and return
    /// the current cursor without advancing it.
    ///
    /// # Errors
    ///
    /// [`SimError::MramOutOfBounds`] if the region would extend past
    /// [`MRAM_CAPACITY`]; the layout is left unchanged.
    pub fn reserve(&mut self, bytes: usize) -> Result<u32> {
        let base = self.next;
        let padded = bytes
            .checked_add(DMA_ALIGN - 1)
            .map(|b| b & !(DMA_ALIGN - 1))
            .unwrap_or(usize::MAX);
        let end = base.saturating_add(padded);
        if end > MRAM_CAPACITY {
            return Err(SimError::MramOutOfBounds {
                addr: base as u32,
                len: bytes,
                capacity: MRAM_CAPACITY,
            });
        }
        self.next = end;
        Ok(base as u32)
    }

    /// Bytes reserved so far.
    pub fn used(&self) -> usize {
        self.next
    }

    /// Bytes still available below the capacity ceiling.
    pub fn remaining(&self) -> usize {
        MRAM_CAPACITY - self.next
    }
}

/// One DPU's 64 KB scratchpad.
///
/// Kernels receive disjoint per-tasklet views of this memory; the
/// simulator does not model WRAM access latency separately because WRAM
/// accesses complete within the pipeline (they are covered by the
/// per-instruction cost).
#[derive(Debug, Clone)]
pub struct Wram {
    data: Box<[u8]>,
}

impl Default for Wram {
    fn default() -> Self {
        Self::new()
    }
}

impl Wram {
    /// Creates a zeroed 64 KB scratchpad.
    pub fn new() -> Self {
        Wram {
            data: vec![0u8; WRAM_CAPACITY].into_boxed_slice(),
        }
    }

    /// Total capacity in bytes (64 KB).
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the scratchpad.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        let end = offset
            .checked_add(buf.len())
            .filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&self.data[offset..end]);
                Ok(())
            }
            None => Err(SimError::WramOutOfBounds {
                offset,
                len: buf.len(),
            }),
        }
    }

    /// Writes `buf` at `offset`.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the scratchpad.
    pub fn write(&mut self, offset: usize, buf: &[u8]) -> Result<()> {
        let end = offset
            .checked_add(buf.len())
            .filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                self.data[offset..end].copy_from_slice(buf);
                Ok(())
            }
            None => Err(SimError::WramOutOfBounds {
                offset,
                len: buf.len(),
            }),
        }
    }

    /// Mutable view of a sub-range, used to hand tasklets disjoint slices.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the scratchpad.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> Result<&mut [u8]> {
        let end = offset.checked_add(len).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => Ok(&mut self.data[offset..end]),
            None => Err(SimError::WramOutOfBounds { offset, len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_round_trip() {
        let mut m = Mram::new();
        let src = [1u8, 2, 3, 4, 5, 6, 7, 8];
        m.dma_write(16, &src).unwrap();
        let mut dst = [0u8; 8];
        m.dma_read(16, &mut dst).unwrap();
        assert_eq!(src, dst);
    }

    #[test]
    fn dma_rejects_unaligned() {
        let m = Mram::new();
        let mut buf = [0u8; 8];
        assert_eq!(
            m.dma_read(4, &mut buf),
            Err(SimError::UnalignedDma { addr: 4, len: 8 })
        );
        let mut buf7 = [0u8; 7];
        assert!(matches!(
            m.dma_read(0, &mut buf7),
            Err(SimError::UnalignedDma { .. })
        ));
    }

    #[test]
    fn dma_rejects_oversized() {
        let m = Mram::new();
        let mut buf = vec![0u8; 2056];
        assert_eq!(
            m.dma_read(0, &mut buf),
            Err(SimError::DmaTooLarge { len: 2056 })
        );
    }

    #[test]
    fn dma_rejects_empty() {
        let m = Mram::new();
        let mut buf = [0u8; 0];
        assert_eq!(m.dma_read(0, &mut buf), Err(SimError::EmptyDma));
    }

    #[test]
    fn dma_rejects_out_of_bounds() {
        let m = Mram::new();
        let mut buf = [0u8; 16];
        let addr = (MRAM_CAPACITY - 8) as u32;
        assert!(matches!(
            m.dma_read(addr, &mut buf),
            Err(SimError::MramOutOfBounds { .. })
        ));
    }

    #[test]
    fn unwritten_mram_reads_zero() {
        let m = Mram::new();
        let mut buf = [0xAAu8; 16];
        m.dma_read(1024, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn lazy_growth_tracks_high_water_mark() {
        let mut m = Mram::new();
        assert_eq!(m.committed(), 0);
        m.host_write(1 << 20, &[1u8; 64]).unwrap();
        assert_eq!(m.committed(), (1 << 20) + 64);
        assert!(m.committed() < MRAM_CAPACITY);
    }

    #[test]
    fn host_rw_round_trip_straddling_committed_edge() {
        let mut m = Mram::new();
        m.host_write(0, &[7u8; 8]).unwrap();
        let mut out = [0u8; 16];
        m.host_read(0, &mut out).unwrap();
        assert_eq!(&out[..8], &[7u8; 8]);
        assert_eq!(&out[8..], &[0u8; 8]);
    }

    #[test]
    fn wram_round_trip_and_bounds() {
        let mut w = Wram::new();
        w.write(100, &[9u8; 4]).unwrap();
        let mut out = [0u8; 4];
        w.read(100, &mut out).unwrap();
        assert_eq!(out, [9u8; 4]);
        assert!(matches!(
            w.write(WRAM_CAPACITY - 2, &[0u8; 4]),
            Err(SimError::WramOutOfBounds { .. })
        ));
    }

    #[test]
    fn wram_slice_mut_is_disjoint_view() {
        let mut w = Wram::new();
        {
            let s = w.slice_mut(0, 8).unwrap();
            s.copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        }
        let mut out = [0u8; 8];
        w.read(0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn wram_overflow_offset_does_not_panic() {
        let w = Wram::new();
        let mut buf = [0u8; 8];
        assert!(w.read(usize::MAX - 2, &mut buf).is_err());
    }

    #[test]
    fn layout_reserves_aligned_disjoint_regions() {
        let mut l = MramLayout::new();
        let a = l.reserve(10).unwrap(); // rounds to 16
        let b = l.reserve(8).unwrap();
        let c = l.reserve(0).unwrap();
        assert_eq!((a, b, c), (0, 16, 24));
        assert_eq!(l.used(), 24);
        assert_eq!(l.remaining(), MRAM_CAPACITY - 24);
    }

    #[test]
    fn layout_rejects_overflow_and_stays_usable() {
        let mut l = MramLayout::new();
        l.reserve(MRAM_CAPACITY - 8).unwrap();
        assert!(matches!(
            l.reserve(16),
            Err(SimError::MramOutOfBounds { .. })
        ));
        // The failed reservation must not consume space.
        assert_eq!(l.reserve(8).unwrap() as usize, MRAM_CAPACITY - 8);
        assert_eq!(l.remaining(), 0);
        assert!(matches!(
            MramLayout::new().reserve(usize::MAX),
            Err(SimError::MramOutOfBounds { .. })
        ));
    }
}
