//! Execution and transfer statistics reported by the simulator.

use crate::arch::{Cycles, DpuId};

/// Per-tasklet counters accumulated while a kernel runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskletStats {
    /// Pipeline instructions issued by this tasklet.
    pub instrs: u64,
    /// Cycles this tasklet spent blocked on MRAM DMA (latency view).
    pub dma_cycles: u64,
    /// Cycles the shared DMA engine was occupied by this tasklet's
    /// transfers (serialization view).
    pub dma_engine_cycles: u64,
    /// Number of MRAM DMA transfers issued.
    pub dma_transfers: u64,
    /// Bytes moved over the MRAM DMA engine.
    pub dma_bytes: u64,
}

impl TaskletStats {
    /// Merges another tasklet's counters into this one.
    pub fn merge(&mut self, other: &TaskletStats) {
        self.instrs += other.instrs;
        self.dma_cycles += other.dma_cycles;
        self.dma_engine_cycles += other.dma_engine_cycles;
        self.dma_transfers += other.dma_transfers;
        self.dma_bytes += other.dma_bytes;
    }
}

/// Result of running one kernel launch on one DPU.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpuRunStats {
    /// Modeled wall-clock cycles for the launch on this DPU.
    pub cycles: Cycles,
    /// Aggregate counters over all tasklets.
    pub totals: TaskletStats,
    /// Per-tasklet counters (length = tasklets used by the launch).
    pub per_tasklet: Vec<TaskletStats>,
    /// Modeled DPU-side energy in picojoules.
    pub energy_pj: f64,
}

impl DpuRunStats {
    /// Number of tasklets that issued at least one instruction in this
    /// launch (a tasklet whose stream slice was empty still runs the
    /// dispatch prologue, so "busy" means it did real work).
    pub fn busy_tasklets(&self) -> usize {
        self.per_tasklet.iter().filter(|t| t.instrs > 0).count()
    }

    /// Fraction of provisioned tasklets that did real work in this
    /// launch; `0.0` when no tasklets ran.
    pub fn tasklet_occupancy(&self) -> f64 {
        if self.per_tasklet.is_empty() {
            0.0
        } else {
            self.busy_tasklets() as f64 / self.per_tasklet.len() as f64
        }
    }
}

/// Running per-DPU counter cell for fleet telemetry: a fixed-size,
/// `Copy` accumulator that a caller-owned arena (one cell per DPU,
/// preallocated) folds [`DpuRunStats`] into after each launch, so a
/// steady-state serving loop can collect fleet statistics without any
/// heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpuCounters {
    /// Kernel launches folded into this cell.
    pub launches: u64,
    /// Total modeled wall-clock cycles across those launches.
    pub cycles: u64,
    /// Total pipeline instructions issued.
    pub instrs: u64,
    /// Total MRAM DMA transfers issued.
    pub dma_transfers: u64,
    /// Total bytes moved over the MRAM DMA engine.
    pub dma_bytes: u64,
    /// Sum over launches of tasklets that did real work.
    pub busy_tasklets: u64,
    /// Sum over launches of tasklets provisioned.
    pub tasklet_slots: u64,
}

impl DpuCounters {
    /// Folds one launch's statistics into the running counters.
    pub fn record(&mut self, stats: &DpuRunStats) {
        self.launches += 1;
        self.cycles += stats.cycles.0;
        self.instrs += stats.totals.instrs;
        self.dma_transfers += stats.totals.dma_transfers;
        self.dma_bytes += stats.totals.dma_bytes;
        self.busy_tasklets += stats.busy_tasklets() as u64;
        self.tasklet_slots += stats.per_tasklet.len() as u64;
    }

    /// Folds another cell's accumulated counters into this one —
    /// everything is a sum, so merging is lossless (used to aggregate
    /// per-tenant engine fleets into one shared-fleet view).
    pub fn merge(&mut self, other: &DpuCounters) {
        self.launches += other.launches;
        self.cycles += other.cycles;
        self.instrs += other.instrs;
        self.dma_transfers += other.dma_transfers;
        self.dma_bytes += other.dma_bytes;
        self.busy_tasklets += other.busy_tasklets;
        self.tasklet_slots += other.tasklet_slots;
    }

    /// Mean tasklet occupancy over all recorded launches (`0.0` before
    /// the first launch).
    pub fn occupancy(&self) -> f64 {
        if self.tasklet_slots == 0 {
            0.0
        } else {
            self.busy_tasklets as f64 / self.tasklet_slots as f64
        }
    }
}

/// Result of a kernel launch across a set of DPUs (they execute in
/// parallel, so the wall time is the slowest DPU).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchReport {
    /// Wall-clock cycles: maximum over the launched DPUs.
    pub wall_cycles: Cycles,
    /// Wall-clock time in nanoseconds.
    pub wall_ns: f64,
    /// Per-DPU run statistics, in launch order.
    pub per_dpu: Vec<(DpuId, DpuRunStats)>,
    /// Total modeled energy across DPUs (picojoules).
    pub energy_pj: f64,
}

impl LaunchReport {
    /// Sum of instructions over all DPUs.
    pub fn total_instrs(&self) -> u64 {
        self.per_dpu.iter().map(|(_, s)| s.totals.instrs).sum()
    }

    /// Sum of MRAM DMA bytes over all DPUs.
    pub fn total_dma_bytes(&self) -> u64 {
        self.per_dpu.iter().map(|(_, s)| s.totals.dma_bytes).sum()
    }

    /// Sum of MRAM DMA transfers over all DPUs.
    pub fn total_dma_transfers(&self) -> u64 {
        self.per_dpu
            .iter()
            .map(|(_, s)| s.totals.dma_transfers)
            .sum()
    }

    /// Cycle-imbalance ratio: slowest DPU over mean DPU (1.0 = perfectly
    /// balanced). Returns 1.0 for an empty launch.
    pub fn imbalance(&self) -> f64 {
        if self.per_dpu.is_empty() {
            return 1.0;
        }
        let max = self
            .per_dpu
            .iter()
            .map(|(_, s)| s.cycles.0)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.per_dpu.iter().map(|(_, s)| s.cycles.0).sum::<u64>() as f64
            / self.per_dpu.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Timing of one host⇄MRAM transfer phase (stage 1 or stage 3 of the
/// UpDLRM pipeline).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferReport {
    /// Wall-clock nanoseconds for the phase.
    pub wall_ns: f64,
    /// Total bytes moved across all DPUs.
    pub bytes: u64,
    /// Number of per-DPU buffers in the phase.
    pub buffers: usize,
    /// Whether the buffers were all the same size and therefore moved in
    /// parallel (the UPMEM rank transfer rule, paper §2.2).
    pub parallel: bool,
    /// Modeled host-link energy in picojoules.
    pub energy_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = TaskletStats {
            instrs: 1,
            dma_cycles: 2,
            dma_engine_cycles: 2,
            dma_transfers: 3,
            dma_bytes: 4,
        };
        let b = TaskletStats {
            instrs: 10,
            dma_cycles: 20,
            dma_engine_cycles: 20,
            dma_transfers: 30,
            dma_bytes: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            TaskletStats {
                instrs: 11,
                dma_cycles: 22,
                dma_engine_cycles: 22,
                dma_transfers: 33,
                dma_bytes: 44,
            }
        );
    }

    #[test]
    fn imbalance_of_empty_launch_is_one() {
        assert_eq!(LaunchReport::default().imbalance(), 1.0);
    }

    #[test]
    fn dpu_counters_fold_launches_and_occupancy() {
        let stats = DpuRunStats {
            cycles: Cycles(100),
            totals: TaskletStats {
                instrs: 30,
                dma_cycles: 0,
                dma_engine_cycles: 0,
                dma_transfers: 4,
                dma_bytes: 256,
            },
            per_tasklet: vec![
                TaskletStats {
                    instrs: 20,
                    ..TaskletStats::default()
                },
                TaskletStats {
                    instrs: 10,
                    ..TaskletStats::default()
                },
                TaskletStats::default(), // idle tasklet
            ],
            energy_pj: 0.0,
        };
        assert_eq!(stats.busy_tasklets(), 2);
        assert!((stats.tasklet_occupancy() - 2.0 / 3.0).abs() < 1e-12);

        let mut cell = DpuCounters::default();
        assert_eq!(cell.occupancy(), 0.0);
        cell.record(&stats);
        cell.record(&stats);
        assert_eq!(cell.launches, 2);
        assert_eq!(cell.cycles, 200);
        assert_eq!(cell.instrs, 60);
        assert_eq!(cell.dma_transfers, 8);
        assert_eq!(cell.dma_bytes, 512);
        assert_eq!(cell.busy_tasklets, 4);
        assert_eq!(cell.tasklet_slots, 6);
        assert!((cell.occupancy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mk = |c: u64| DpuRunStats {
            cycles: Cycles(c),
            ..Default::default()
        };
        let r = LaunchReport {
            wall_cycles: Cycles(300),
            wall_ns: 0.0,
            per_dpu: vec![(DpuId(0), mk(100)), (DpuId(1), mk(300))],
            energy_pj: 0.0,
        };
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
    }
}
