//! Calibrated timing and energy cost model.
//!
//! All latencies the simulator reports flow through this single struct so
//! that the model can be recalibrated (or ablated) in one place. Defaults
//! are calibrated to the published UPMEM characterization literature and
//! the shapes reported in the UpDLRM paper:
//!
//! * **MRAM DMA** — latency grows slowly from 8 B to 32 B and more steeply
//!   afterwards (paper Fig. 3). We model `base + slope · size` with a
//!   large fixed `base`, the shape measured by the PrIM benchmarks
//!   (~77 cycles setup + ~0.5 cycles/byte).
//! * **Pipeline** — single-issue, 11-deep; a lone tasklet issues one
//!   instruction every 11 cycles, 11+ tasklets reach 1 IPC.
//! * **Host transfers** — per-byte CPU⇄MRAM costs; transfers to multiple
//!   DPUs proceed in parallel only when every buffer has the same size
//!   (paper §2.2), otherwise they serialize.

use crate::arch::{Cycles, DEFAULT_CLOCK_HZ, DMA_MAX_TRANSFER};

/// Tunable cost model for one [`PimSystem`](crate::host::PimSystem).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// DPU clock frequency in Hz.
    pub clock_hz: u64,
    /// Fixed cycles charged per MRAM DMA transfer (setup + row activation).
    pub dma_base_cycles: u64,
    /// Additional cycles per byte moved by the MRAM DMA engine.
    pub dma_cycles_per_byte: f64,
    /// Cycles the (pipelined) DMA engine itself is occupied per
    /// transfer beyond the per-byte cost. The full `dma_base_cycles`
    /// setup latency is exposed to the *issuing tasklet*, but queued
    /// transfers from other tasklets overlap most of it.
    pub dma_engine_overhead_cycles: u64,
    /// Cycles per emulated 32-bit floating point add (DPUs have no FPU).
    pub fp32_add_cycles: u64,
    /// Fixed pipeline instructions per vector-accumulate operation
    /// (stream parsing, accumulator addressing, loop control).
    pub accumulate_base_instrs: u64,
    /// Additional instructions per accumulated element (packed 64-bit
    /// adds process two 32-bit lanes per op).
    pub accumulate_per_elem_instrs: f64,
    /// Additional instructions per accumulated element when the source
    /// operand is a quantized u8 row (eight 8-bit lanes unpack per
    /// 64-bit load, so the dequantize-accumulate loop retires fewer
    /// instructions per element than the fp32 path).
    pub accumulate_per_elem_instrs_u8: f64,
    /// Cycles per native 32-bit integer ALU op.
    pub int_op_cycles: u64,
    /// Fixed instruction overhead per embedding-style loop iteration
    /// (address computation, bounds check, branch).
    pub loop_overhead_instrs: u64,
    /// Fixed cycles charged per kernel launch on a DPU (boot + fault
    /// check + host round trip amortized per launch).
    pub launch_overhead_cycles: u64,
    /// Nanoseconds per byte of *total* CPU→MRAM traffic when buffers
    /// move in parallel (the host bus is shared by all DPUs; UPMEM's
    /// aggregate host→DPU bandwidth is a few GB/s).
    pub host_to_mram_ns_per_byte: f64,
    /// Nanoseconds per byte of *total* MRAM→CPU traffic when buffers
    /// move in parallel (the gather direction is markedly slower on
    /// UPMEM DIMMs).
    pub mram_to_host_ns_per_byte: f64,
    /// Bandwidth factor applied when per-DPU buffers differ in size and
    /// the transfers serialize (paper §2.2).
    pub ragged_bw_factor: f64,
    /// Fixed nanoseconds per host transfer *phase* (driver + rank setup).
    pub host_transfer_base_ns: f64,
    /// Energy: picojoules per byte moved by the MRAM DMA engine.
    pub dma_pj_per_byte: f64,
    /// Energy: picojoules per DPU pipeline instruction.
    pub instr_pj: f64,
    /// Energy: picojoules per byte of host⇄MRAM traffic.
    pub host_pj_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: DEFAULT_CLOCK_HZ,
            // PrIM-style DMA curve: ~77 cycle setup, ~0.5 cycles/byte.
            // 8 B -> 81, 32 B -> 93 (flat region), 64 B -> 109,
            // 2048 B -> 1101 (steep region), matching Fig. 3's shape.
            dma_base_cycles: 77,
            dma_cycles_per_byte: 0.5,
            dma_engine_overhead_cycles: 16,
            // Software-emulated fp32 add (no FPU on the DPU).
            fp32_add_cycles: 6,
            accumulate_base_instrs: 20,
            accumulate_per_elem_instrs: 0.5,
            accumulate_per_elem_instrs_u8: 0.25,
            int_op_cycles: 1,
            loop_overhead_instrs: 8,
            launch_overhead_cycles: 12_000,
            // Aggregate host->MRAM ~6.4 GB/s when parallel and
            // MRAM->host ~4.7 GB/s — the asymmetric figures the PrIM
            // characterization measured on real UPMEM DIMMs.
            host_to_mram_ns_per_byte: 0.156,
            mram_to_host_ns_per_byte: 0.21,
            ragged_bw_factor: 0.6,
            host_transfer_base_ns: 2_500.0,
            dma_pj_per_byte: 15.0,
            instr_pj: 8.0,
            host_pj_per_byte: 40.0,
        }
    }
}

impl CostModel {
    /// Latency cycles the issuing tasklet observes for one MRAM DMA
    /// transfer of `len` bytes.
    ///
    /// `len` must already satisfy the hardware constraints (8-byte
    /// aligned, `1..=2048`); the memory layer validates before charging.
    #[inline]
    pub fn dma_cycles(&self, len: usize) -> Cycles {
        debug_assert!(len > 0 && len <= DMA_MAX_TRANSFER);
        Cycles(self.dma_base_cycles + (self.dma_cycles_per_byte * len as f64).round() as u64)
    }

    /// Cycles the DMA engine itself is busy with one transfer of `len`
    /// bytes (the serialization bound across tasklets).
    #[inline]
    pub fn dma_engine_cycles(&self, len: usize) -> Cycles {
        debug_assert!(len > 0 && len <= DMA_MAX_TRANSFER);
        Cycles(
            self.dma_engine_overhead_cycles
                + (self.dma_cycles_per_byte * len as f64).round() as u64,
        )
    }

    /// Nanoseconds for one MRAM DMA transfer of `len` bytes — the Fig. 3
    /// curve in time units.
    #[inline]
    pub fn dma_nanos(&self, len: usize) -> f64 {
        self.dma_cycles(len).to_nanos(self.clock_hz)
    }

    /// Host→MRAM transfer time for one DPU buffer of `bytes` bytes.
    #[inline]
    pub fn host_to_mram_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * self.host_to_mram_ns_per_byte
    }

    /// MRAM→host transfer time for one DPU buffer of `bytes` bytes.
    #[inline]
    pub fn mram_to_host_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * self.mram_to_host_ns_per_byte
    }

    /// Converts DPU cycles to nanoseconds under this model's clock.
    #[inline]
    pub fn cycles_to_ns(&self, c: Cycles) -> f64 {
        c.to_nanos(self.clock_hz)
    }

    /// DMA-engine cycles for `rows` back-to-back row transfers of
    /// `row_bytes` each — the host-driven bulk path (EMT shard
    /// migration) mirror of `Charges::charge_dma_repeat`: every
    /// increment is an integer multiple of the single-transfer charge,
    /// so one bulk charge equals `rows` repeated charges exactly and
    /// modeled migration time stays bit-deterministic.
    #[inline]
    pub fn bulk_rows_dma_cycles(&self, row_bytes: usize, rows: u64) -> Cycles {
        if rows == 0 || row_bytes == 0 {
            return Cycles(0);
        }
        Cycles(rows * self.dma_engine_cycles(row_bytes).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dma_curve_is_flat_then_steep() {
        // The paper's Fig. 3 observation: 8 B -> 32 B grows slowly,
        // beyond 32 B it grows "more dramatically".
        let m = CostModel::default();
        let l8 = m.dma_nanos(8);
        let l32 = m.dma_nanos(32);
        let l128 = m.dma_nanos(128);
        let l2048 = m.dma_nanos(2048);
        // Flat region: 4x the bytes costs < 1.2x the time.
        assert!(
            l32 / l8 < 1.2,
            "8->32B should be nearly flat: {l8} -> {l32}"
        );
        // Steep region: going 32 -> 2048 costs much more than 8 -> 32.
        let flat_slope = (l32 - l8) / 24.0;
        let steep_slope = (l2048 - l128) / 1920.0;
        assert!(steep_slope >= flat_slope * 0.9);
        assert!(l2048 / l32 > 5.0, "large transfers must be much slower");
    }

    #[test]
    fn dma_latency_monotonic_in_size() {
        let m = CostModel::default();
        let mut prev = 0.0;
        for len in (8..=2048).step_by(8) {
            let c = m.dma_nanos(len);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn host_transfer_costs_scale_linearly() {
        let m = CostModel::default();
        assert!((m.host_to_mram_ns(2000) - 2.0 * m.host_to_mram_ns(1000)).abs() < 1e-9);
        assert!(m.mram_to_host_ns(64) > 0.0);
    }

    #[test]
    fn cost_model_serde_round_trip() {
        // A genuinely non-default model so every field must survive.
        let m = CostModel {
            clock_hz: 400_000_000,
            dma_cycles_per_byte: 0.75,
            ragged_bw_factor: 1.25,
            instr_pj: 9.5,
            ..CostModel::default()
        };
        let json = serde::json::to_string(&m);
        assert!(json.contains("\"clock_hz\""));
        let back: CostModel = serde::json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // And the timing it computes is identical.
        assert_eq!(m.dma_nanos(512).to_bits(), back.dma_nanos(512).to_bits());
    }

    #[test]
    fn pim_config_serde_round_trip() {
        let cfg = crate::PimConfig::new(37, 12)
            .with_host_threads(5)
            .with_cost(CostModel {
                launch_overhead_cycles: 7_777,
                ..CostModel::default()
            });
        let json = serde::json::to_string_pretty(&cfg);
        let back: crate::PimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
