//! Error type for the simulator.

use crate::arch::DpuId;
use std::fmt;

/// Errors produced by the UPMEM simulator.
///
/// Every variant names the violated architectural constraint so that a
/// failing kernel or host transfer can be debugged without a real DPU's
/// (notoriously terse) fault registers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An MRAM DMA transfer was not 8-byte aligned.
    UnalignedDma {
        /// Offending MRAM address.
        addr: u32,
        /// Transfer length in bytes.
        len: usize,
    },
    /// An MRAM DMA transfer exceeded the 2048-byte hardware maximum.
    DmaTooLarge {
        /// Requested length in bytes.
        len: usize,
    },
    /// A zero-length DMA transfer was requested.
    EmptyDma,
    /// An access fell outside the 64 MB MRAM bank.
    MramOutOfBounds {
        /// Offending address.
        addr: u32,
        /// Transfer length in bytes.
        len: usize,
        /// Configured MRAM capacity.
        capacity: usize,
    },
    /// An access fell outside the 64 KB WRAM scratchpad.
    WramOutOfBounds {
        /// Offending offset.
        offset: usize,
        /// Access length.
        len: usize,
    },
    /// A kernel asked for more per-tasklet WRAM than available.
    WramExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes available to this tasklet.
        available: usize,
    },
    /// A `DpuId` was out of range for the system.
    UnknownDpu {
        /// Offending id.
        id: DpuId,
        /// Number of DPUs in the system.
        nr_dpus: usize,
    },
    /// Invalid system configuration (e.g. zero DPUs or tasklets).
    InvalidConfig(String),
    /// A kernel reported a fault of its own.
    KernelFault(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnalignedDma { addr, len } => write!(
                f,
                "mram dma must be 8-byte aligned: addr={addr:#x}, len={len}"
            ),
            SimError::DmaTooLarge { len } => {
                write!(f, "mram dma exceeds 2048-byte maximum: len={len}")
            }
            SimError::EmptyDma => write!(f, "mram dma of zero bytes"),
            SimError::MramOutOfBounds {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "mram access out of bounds: addr={addr:#x}, len={len}, capacity={capacity}"
            ),
            SimError::WramOutOfBounds { offset, len } => {
                write!(f, "wram access out of bounds: offset={offset}, len={len}")
            }
            SimError::WramExhausted {
                requested,
                available,
            } => write!(
                f,
                "wram allocation of {requested} bytes exceeds {available} available"
            ),
            SimError::UnknownDpu { id, nr_dpus } => {
                write!(f, "unknown dpu {id} (system has {nr_dpus} dpus)")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::KernelFault(msg) => write!(f, "kernel fault: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SimError::UnalignedDma { addr: 0x11, len: 7 };
        let s = e.to_string();
        assert!(s.contains("8-byte aligned"));
        assert!(s.contains("0x11"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::EmptyDma);
        assert_eq!(e.to_string(), "mram dma of zero bytes");
    }
}
