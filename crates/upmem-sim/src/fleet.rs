//! Multi-rank fleet: thousands of DPUs behind per-rank host buses.
//!
//! A single [`PimSystem`] models one UPMEM *rank* — a set of DPUs
//! sharing one host transfer bus, which is why its scatter/gather wall
//! is a single aggregate-bandwidth term. Scaling embedding tables to
//! "millions of users" needs more MRAM than one rank holds, so the
//! [`Fleet`] composes many ranks:
//!
//! * each rank keeps its own [`PimSystem`] (MRAM is lazily grown, so a
//!   fleet of thousands of simulated DPUs does not eagerly commit
//!   terabytes of host memory);
//! * ranks have *independent* data buses — per-rank transfer phases
//!   overlap, so a fleet phase's byte-moving wall is the **max** over
//!   the ranks it touches, not the sum;
//! * the host driver still sets each rank's transfer up serially, which
//!   [`RankCostModel::rank_base_ns`] charges once per rank touched —
//!   the fan-out surcharge that grows as a table spreads across more
//!   ranks (the term the placement planner's tiering trades against);
//! * kernel launches are asynchronous across ranks (max wall) with a
//!   serial per-rank dispatch charge of
//!   [`RankCostModel::rank_launch_ns`].
//!
//! The combine rules live in [`Fleet::combine_transfers`] and
//! [`Fleet::combine_launches`] so callers that drive ranks directly
//! (the tiered engine) and tests agree on one implementation.
//! DESIGN.md §4.9 documents the model and its known divergences.

use crate::cost::CostModel;
use crate::error::{Result, SimError};
use crate::host::{PimConfig, PimSystem};
use crate::stats::{LaunchReport, TransferReport};

/// Shape of a multi-rank fleet: `nr_ranks` ranks of `dpus_per_rank`
/// DPUs each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankTopology {
    /// Number of ranks (independent host buses).
    pub nr_ranks: usize,
    /// DPUs on each rank.
    pub dpus_per_rank: usize,
}

impl RankTopology {
    /// Total DPUs across the fleet.
    pub fn nr_dpus(&self) -> usize {
        self.nr_ranks * self.dpus_per_rank
    }

    /// Splits a fleet-global DPU index into `(rank, rank-local dpu)`.
    pub fn locate(&self, global_dpu: usize) -> (usize, usize) {
        (
            global_dpu / self.dpus_per_rank,
            global_dpu % self.dpus_per_rank,
        )
    }
}

/// Rank-level additions to the [`CostModel`]: what crossing rank
/// boundaries costs on top of each rank's own transfer accounting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankCostModel {
    /// Fixed nanoseconds of serial host-driver setup charged once per
    /// rank touched by a transfer phase (scatter or gather).
    pub rank_base_ns: f64,
    /// Fixed nanoseconds of serial dispatch charged once per rank
    /// touched by a launch phase.
    pub rank_launch_ns: f64,
}

impl Default for RankCostModel {
    fn default() -> Self {
        // A per-rank `dpu_push_xfer`/`dpu_launch` driver round trip is
        // the same order as one rank's `host_transfer_base_ns` setup;
        // launches piggyback on an ioctl and are cheaper.
        RankCostModel {
            rank_base_ns: 1_500.0,
            rank_launch_ns: 500.0,
        }
    }
}

/// A multi-rank PIM fleet: `nr_ranks` independent [`PimSystem`]s plus
/// the rank-level cost extension.
#[derive(Debug)]
pub struct Fleet {
    ranks: Vec<PimSystem>,
    topology: RankTopology,
    rank_cost: RankCostModel,
}

impl Fleet {
    /// Builds a fleet of `topology.nr_ranks` identical ranks, each a
    /// [`PimSystem`] of `topology.dpus_per_rank` DPUs configured with
    /// `tasklets`, `cost` and `host_threads` (per rank).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for zero ranks or zero DPUs per
    /// rank; rank construction errors propagate.
    pub fn new(
        topology: RankTopology,
        tasklets: usize,
        cost: CostModel,
        host_threads: usize,
        rank_cost: RankCostModel,
    ) -> Result<Fleet> {
        if topology.nr_ranks == 0 || topology.dpus_per_rank == 0 {
            return Err(SimError::InvalidConfig(format!(
                "fleet topology must be nonzero, got {} ranks x {} DPUs",
                topology.nr_ranks, topology.dpus_per_rank
            )));
        }
        let mut ranks = Vec::with_capacity(topology.nr_ranks);
        for _ in 0..topology.nr_ranks {
            ranks.push(PimSystem::new(
                PimConfig::new(topology.dpus_per_rank, tasklets)
                    .with_cost(cost.clone())
                    .with_host_threads(host_threads),
            )?);
        }
        Ok(Fleet {
            ranks,
            topology,
            rank_cost,
        })
    }

    /// The fleet's shape.
    pub fn topology(&self) -> RankTopology {
        self.topology
    }

    /// The rank-level cost extension.
    pub fn rank_cost(&self) -> &RankCostModel {
        &self.rank_cost
    }

    /// Total DPUs across all ranks.
    pub fn nr_dpus(&self) -> usize {
        self.topology.nr_dpus()
    }

    /// Borrow rank `r`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDpu`]-style range error for an out-of-range
    /// rank index.
    pub fn rank(&self, r: usize) -> Result<&PimSystem> {
        self.ranks.get(r).ok_or(SimError::InvalidConfig(format!(
            "rank {r} out of range ({} ranks)",
            self.ranks.len()
        )))
    }

    /// Mutably borrow rank `r`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fleet::rank`].
    pub fn rank_mut(&mut self, r: usize) -> Result<&mut PimSystem> {
        let n = self.ranks.len();
        self.ranks.get_mut(r).ok_or(SimError::InvalidConfig(format!(
            "rank {r} out of range ({n} ranks)"
        )))
    }

    /// Combines per-rank transfer reports of one fleet-wide phase.
    ///
    /// Ranks move bytes in parallel on independent buses (max of the
    /// per-rank walls, each already including its own
    /// `host_transfer_base_ns`); the host driver's serial per-rank setup
    /// adds `rank_base_ns` per rank touched. Byte counts, buffer counts
    /// and energy are sums; `parallel` holds only if every rank's own
    /// transfer was parallel. Empty input is a free no-op phase.
    pub fn combine_transfers<'a>(
        &self,
        reports: impl IntoIterator<Item = &'a TransferReport>,
    ) -> TransferReport {
        let mut out = TransferReport::default();
        let mut ranks_touched = 0usize;
        let mut max_wall = 0.0f64;
        out.parallel = true;
        for r in reports {
            ranks_touched += 1;
            max_wall = max_wall.max(r.wall_ns);
            out.bytes += r.bytes;
            out.buffers += r.buffers;
            out.parallel &= r.parallel;
            out.energy_pj += r.energy_pj;
        }
        if ranks_touched == 0 {
            out.parallel = false;
            return out;
        }
        out.wall_ns = self.rank_cost.rank_base_ns * ranks_touched as f64 + max_wall;
        out
    }

    /// Combines per-rank launch walls of one fleet-wide launch phase:
    /// ranks run concurrently (max wall) after a serial
    /// `rank_launch_ns` dispatch per rank touched. Returns the combined
    /// `(wall_ns, energy_pj)`; per-DPU statistics stay with the
    /// per-rank [`LaunchReport`]s.
    pub fn combine_launches<'a>(
        &self,
        reports: impl IntoIterator<Item = &'a LaunchReport>,
    ) -> (f64, f64) {
        let mut ranks_touched = 0usize;
        let mut max_wall = 0.0f64;
        let mut energy = 0.0f64;
        for r in reports {
            ranks_touched += 1;
            max_wall = max_wall.max(r.wall_ns);
            energy += r.energy_pj;
        }
        if ranks_touched == 0 {
            return (0.0, 0.0);
        }
        (
            self.rank_cost.rank_launch_ns * ranks_touched as f64 + max_wall,
            energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DpuId;

    fn small_fleet(ranks: usize, dpus: usize) -> Fleet {
        Fleet::new(
            RankTopology {
                nr_ranks: ranks,
                dpus_per_rank: dpus,
            },
            8,
            CostModel::default(),
            1,
            RankCostModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn topology_locates_global_dpus() {
        let t = RankTopology {
            nr_ranks: 4,
            dpus_per_rank: 64,
        };
        assert_eq!(t.nr_dpus(), 256);
        assert_eq!(t.locate(0), (0, 0));
        assert_eq!(t.locate(63), (0, 63));
        assert_eq!(t.locate(64), (1, 0));
        assert_eq!(t.locate(255), (3, 63));
    }

    #[test]
    fn zero_topology_rejected() {
        for (r, d) in [(0, 8), (8, 0)] {
            assert!(Fleet::new(
                RankTopology {
                    nr_ranks: r,
                    dpus_per_rank: d
                },
                8,
                CostModel::default(),
                1,
                RankCostModel::default(),
            )
            .is_err());
        }
    }

    #[test]
    fn thousands_of_dpus_are_memory_feasible() {
        // 32 ranks x 64 DPUs = 2048 DPUs. Lazy MRAM means construction
        // commits kilobytes, not 128 GB; touching one DPU per rank
        // proves the fleet is functional end to end.
        let mut fleet = small_fleet(32, 64);
        assert_eq!(fleet.nr_dpus(), 2048);
        for r in 0..32 {
            let sys = fleet.rank_mut(r).unwrap();
            sys.load_mram(DpuId(0), 0, &(r as u64).to_le_bytes())
                .unwrap();
        }
        let (bufs, _) = fleet.rank(31).unwrap().gather(&[(DpuId(0), 0, 8)]).unwrap();
        assert_eq!(u64::from_le_bytes(bufs[0][..8].try_into().unwrap()), 31);
        assert!(fleet.rank(32).is_err());
    }

    #[test]
    fn transfer_combine_is_max_plus_per_rank_setup() {
        let fleet = small_fleet(2, 4);
        let a = TransferReport {
            wall_ns: 10_000.0,
            bytes: 4096,
            buffers: 4,
            parallel: true,
            energy_pj: 100.0,
        };
        let b = TransferReport {
            wall_ns: 30_000.0,
            bytes: 8192,
            buffers: 2,
            parallel: false,
            energy_pj: 50.0,
        };
        let c = fleet.combine_transfers([&a, &b]);
        let base = fleet.rank_cost().rank_base_ns;
        assert_eq!(c.wall_ns, 2.0 * base + 30_000.0);
        assert_eq!(c.bytes, 12_288);
        assert_eq!(c.buffers, 6);
        assert!(!c.parallel, "any ragged rank marks the phase ragged");
        assert_eq!(c.energy_pj, 150.0);

        // One rank: its wall plus one setup charge.
        let one = fleet.combine_transfers([&a]);
        assert_eq!(one.wall_ns, base + 10_000.0);
        assert!(one.parallel);

        // No ranks touched: free phase.
        let none = fleet.combine_transfers([]);
        assert_eq!(none.wall_ns, 0.0);
        assert_eq!(none.bytes, 0);
    }

    #[test]
    fn launch_combine_is_max_plus_dispatch() {
        let fleet = small_fleet(3, 2);
        let a = LaunchReport {
            wall_ns: 5_000.0,
            energy_pj: 10.0,
            ..Default::default()
        };
        let b = LaunchReport {
            wall_ns: 7_000.0,
            energy_pj: 20.0,
            ..Default::default()
        };
        let (wall, energy) = fleet.combine_launches([&a, &b]);
        assert_eq!(wall, 2.0 * fleet.rank_cost().rank_launch_ns + 7_000.0);
        assert_eq!(energy, 30.0);
        assert_eq!(fleet.combine_launches([]), (0.0, 0.0));
    }

    #[test]
    fn rank_fanout_surcharge_grows_with_ranks_touched() {
        // The planner's core trade-off: the same bytes spread across
        // more ranks cost more setup even though the byte-moving wall
        // (a max) stays flat. This is what tiering buys back.
        let fleet = small_fleet(8, 4);
        let per_rank = TransferReport {
            wall_ns: 4_000.0,
            bytes: 1024,
            buffers: 1,
            parallel: true,
            energy_pj: 1.0,
        };
        let touch2 = fleet.combine_transfers(std::iter::repeat_n(&per_rank, 2));
        let touch8 = fleet.combine_transfers(std::iter::repeat_n(&per_rank, 8));
        assert!(touch8.wall_ns > touch2.wall_ns);
        assert_eq!(
            touch8.wall_ns - touch2.wall_ns,
            6.0 * fleet.rank_cost().rank_base_ns
        );
    }

    #[test]
    fn rank_cost_model_serde_round_trip() {
        let m = RankCostModel {
            rank_base_ns: 123.5,
            rank_launch_ns: 7.25,
        };
        let json = serde::json::to_string(&m);
        let back: RankCostModel = serde::json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let t = RankTopology {
            nr_ranks: 16,
            dpus_per_rank: 128,
        };
        let back: RankTopology = serde::json::from_str(&serde::json::to_string(&t)).unwrap();
        assert_eq!(back, t);
    }
}
