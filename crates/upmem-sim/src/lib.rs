//! # upmem-sim — a functional + timing simulator of the UPMEM PIM system
//!
//! This crate replaces the physical UPMEM hardware used by the UpDLRM
//! paper (DAC'24) with a from-scratch simulator that is *functional*
//! (kernels compute real results over real bytes in MRAM/WRAM) and
//! *timed* (a calibrated cost model reproduces the architecture's
//! first-order performance behaviour):
//!
//! * 64 MB MRAM per DPU, reached via a DMA engine with 8-byte alignment
//!   and a 2048-byte transfer cap, whose latency curve is flat from 8 B
//!   to 32 B and steeper beyond (paper Fig. 3);
//! * a single-issue 11-deep pipeline shared by up to 24 tasklets;
//! * host⇄MRAM transfers that parallelize across DPUs only when every
//!   per-DPU buffer has the same size;
//! * no inter-DPU communication path — all data exchange goes through
//!   the host, exactly as on the real DIMMs.
//!
//! ## Example
//!
//! ```rust
//! use upmem_sim::{Kernel, PimConfig, PimSystem, TaskletCtx, DpuId, SimError};
//!
//! /// Sums 8 u32 values stored in MRAM into WRAM.
//! struct SumKernel;
//!
//! impl Kernel for SumKernel {
//!     fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
//!         if ctx.tasklet_id() != 0 {
//!             return Ok(());
//!         }
//!         let mut buf = [0u8; 32];
//!         ctx.mram_read(0, &mut buf)?;
//!         let sum: u32 = buf
//!             .chunks_exact(4)
//!             .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
//!             .sum();
//!         ctx.charge_int_ops(8);
//!         ctx.mram_write(64, &(sum as u64).to_le_bytes())?;
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), SimError> {
//! let mut sys = PimSystem::new(PimConfig::new(1, 14))?;
//! let data: Vec<u8> = (1u32..=8).flat_map(|v| v.to_le_bytes()).collect();
//! sys.load_mram(DpuId(0), 0, &data)?;
//! let report = sys.launch_all(&SumKernel)?;
//! assert!(report.wall_cycles.0 > 0);
//! let (bufs, _) = sys.gather(&[(DpuId(0), 64, 8)])?;
//! assert_eq!(u64::from_le_bytes(bufs[0][..8].try_into().unwrap()), 36);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod cost;
pub mod dpu;
pub mod error;
pub mod fleet;
pub mod host;
pub mod mem;
pub mod stats;

pub use arch::{Cycles, DpuId};
pub use cost::CostModel;
pub use dpu::{Charges, Dpu, Kernel, MramReader, TaskletCtx};
pub use error::{Result, SimError};
pub use fleet::{Fleet, RankCostModel, RankTopology};
pub use host::{default_host_threads, PimConfig, PimSystem};
pub use mem::{Mram, MramLayout, Wram};
pub use stats::{DpuCounters, DpuRunStats, LaunchReport, TaskletStats, TransferReport};
