//! # runtime — wall-clock concurrent serving, locked to the modeled oracle
//!
//! The `scheduler` crate answers *"what should an open-loop serving
//! front-end do"* on modeled time; this crate actually **does it on a
//! real clock**, with real threads:
//!
//! ```text
//!   ingest thread          batcher (caller's thread)       shard workers
//!  ───────────────        ──────────────────────────      ───────────────
//!   replay UPWL      ──▶   BatchPolicy admission      ──▶  engine 0
//!   arrivals in       SPSC  + launch triggers          SPSC engine 1
//!   (scaled) wall ns  ring  (same core as the          ring   ...
//!                           modeled event loop)        ◀──  completions
//! ```
//!
//! * the **ingest** thread replays the workload's arrival trace in real
//!   nanoseconds (optionally stretched by `time_scale`) and pushes
//!   `(id, arrival_ns)` into a bounded SPSC ring;
//! * the **batcher** drives the exact same clock-agnostic
//!   [`BatchPolicy`] the discrete-event scheduler uses — admission,
//!   overload policy and size/deadline/drain launch triggers are one
//!   implementation, not a reimplementation — and dispatches formed
//!   batches round-robin to the shard rings;
//! * each **worker** owns one [`UpdlrmEngine`] shard, runs every batch
//!   through `serve_stream`, and reports the pooled embeddings plus the
//!   modeled breakdown and its *measured* wall time back on a
//!   completion ring.
//!
//! All rings are the hand-rolled lock-free SPSC of [`ring`] — bounded,
//! so a slow stage exerts backpressure instead of growing a queue.
//!
//! ## The oracle lock
//!
//! In **deterministic mode** ([`RuntimeConfig::deterministic`]) no wall
//! clock enters any decision: the batcher replays modeled time in
//! lockstep — it holds a one-arrival lookahead (the next arrival, or
//! end-of-stream, must be known before a launch commits, exactly like
//! the event loop's `times[next]` peek) and waits for each batch's
//! modeled service time before advancing `engine_free`. The result is
//! **byte-identical batches, pooled embeddings and `SchedReport`** to
//! [`Scheduler::run`](scheduler::Scheduler::run) on the same trace —
//! `tests/differential.rs` enforces it. That lock is what makes the
//! wall-clock mode trustworthy: the concurrency is proven not to change
//! the semantics, only the clock.
//!
//! In **wall mode** the batcher reads a monotonic clock (mapped to
//! modeled ns by `time_scale`), arrivals land when the ingest thread
//! actually delivers them, and shards drain concurrently. Measured
//! per-request latency is `completion_wall − ideal_arrival_wall` (the
//! open-loop convention — queueing caused by a lagging ingest counts,
//! so coordinated omission cannot hide overload). Where wall time may
//! diverge from the model: OS scheduling jitter, sleep granularity,
//! host CPU contention between shards, and ring backpressure — see
//! DESIGN.md §4.8.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ring;

use std::time::Instant;

use dlrm_model::{Matrix, QueryBatch};
use scheduler::{
    assemble_into, report_is_finite, service_ns_to_u64, AdmitOutcome, BatchPolicy, SchedConfig,
    SchedReport,
};
use updlrm_core::engine::EmbeddingBreakdown;
use updlrm_core::{percentile, CoreError, Result, SchedTrigger, UpdlrmEngine};
use workloads::{Workload, NS_PER_SEC};

pub use ring::{ring, Consumer, Producer};

/// How the wall-clock runtime is shaped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Batcher and admission-queue parameters — the same values drive
    /// the modeled oracle, so the two are directly comparable.
    pub sched: SchedConfig,
    /// Engine shards (worker threads). Each shard needs its own
    /// [`UpdlrmEngine`]; identical engines make dispatch-order
    /// invisible in the pooled outputs.
    pub shards: usize,
    /// Wall nanoseconds per modeled nanosecond during trace replay.
    /// `1.0` replays in real time; `10.0` stretches a 1 ms modeled
    /// trace over 10 ms of wall time (useful when modeled service is
    /// far cheaper than the simulator's host cost of computing it).
    pub time_scale: f64,
    /// Replay modeled time in lockstep instead of reading the wall
    /// clock — the oracle-locked mode (see the module docs).
    pub deterministic: bool,
    /// Slots per SPSC ring (arrival ring and each shard's work /
    /// completion rings). Bounds in-flight batches per shard.
    pub ring_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            sched: SchedConfig::default(),
            shards: 1,
            time_scale: 1.0,
            deterministic: false,
            ring_capacity: 64,
        }
    }
}

impl RuntimeConfig {
    /// Checks the parameters for internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on an invalid [`SchedConfig`], zero
    /// shards, zero ring capacity, or a non-finite / non-positive
    /// `time_scale`.
    pub fn validate(&self) -> Result<()> {
        self.sched.validate()?;
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.ring_capacity == 0 {
            return Err(CoreError::InvalidConfig(
                "ring_capacity must be >= 1".into(),
            ));
        }
        if !self.time_scale.is_finite() || self.time_scale <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "time_scale must be finite and > 0, got {}",
                self.time_scale
            )));
        }
        Ok(())
    }
}

/// Wall-clock measurements of one [`Runtime::run`], alongside the
/// modeled quantities they correspond to. All fields are finite.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WallStats {
    /// Wall time from runtime start to the last completion (ns).
    pub wall_elapsed_ns: f64,
    /// Completed requests per second of wall time.
    pub measured_qps: f64,
    /// Sum of modeled pipeline walls across all batches (ns) — what the
    /// oracle says the engine work took.
    pub modeled_service_ns: f64,
    /// Sum of measured `serve_stream` wall times across all batches
    /// (ns) — what the host actually spent computing them.
    pub measured_service_ns: f64,
    /// The `time_scale` the trace was replayed under.
    pub time_scale: f64,
}

/// Everything one [`Runtime::run`] produced.
///
/// In deterministic mode `sched` is byte-identical to the modeled
/// oracle's report. In wall mode the counter fields (admitted, shed,
/// triggers, …) are exact, while the time statistics (`makespan_ns`,
/// `achieved_qps`, the latency quantiles) are **measured wall
/// nanoseconds** — the modeled-vs-measured comparison lives in
/// [`WallStats`] and the caller's oracle run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Scheduling outcome (see the struct docs for which clock each
    /// field is on).
    pub sched: SchedReport,
    /// Wall-clock measurements. In deterministic mode the latency-free
    /// subset (elapsed, qps, service sums) is still measured; it
    /// reflects host compute cost, not the modeled timeline.
    pub wall: WallStats,
    /// Shards the run used.
    pub shards: usize,
    /// Whether the run was oracle-locked.
    pub deterministic: bool,
    /// Batches each shard executed (`len() == shards`).
    pub batches_per_shard: Vec<u64>,
    /// `histogram[k]` = batches formed with exactly `k` queries.
    pub batch_histogram: Vec<u64>,
}

/// A formed batch on its way to a shard worker.
struct WorkItem {
    seq: usize,
    ids: Vec<u32>,
    batch: QueryBatch,
}

/// What a shard worker sends back per batch.
enum Completion {
    Done {
        seq: usize,
        ids: Vec<u32>,
        pooled: Vec<Matrix>,
        breakdown: EmbeddingBreakdown,
        /// Measured wall time of the `serve_stream` call (ns).
        service_wall_ns: u64,
        /// Wall instant (ns since runtime start) the batch finished.
        done_wall_ns: u64,
    },
    Failed(CoreError),
}

/// The wall-clock concurrent serving runtime. Stateless between runs;
/// holds only the validated configuration.
#[derive(Debug, Clone)]
pub struct Runtime {
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime from a validated configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `cfg` fails
    /// [`RuntimeConfig::validate`].
    pub fn new(cfg: RuntimeConfig) -> Result<Runtime> {
        cfg.validate()?;
        Ok(Runtime { cfg })
    }

    /// The configuration this runtime serves under.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Serves `workload`'s arrival trace through `engines` (one per
    /// shard). `sink(batch_seq, query_ids, pooled, breakdown)` fires
    /// once per executed batch on the calling thread — in launch order
    /// when deterministic, in completion order otherwise.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the workload has no arrival
    /// trace, `engines.len() != shards`, or any engine cannot take
    /// `max_batch_size` batches; [`CoreError::Invariant`] if a worker
    /// dies or modeled time runs backwards; engine errors propagate.
    pub fn run<F>(
        &self,
        engines: &mut [UpdlrmEngine],
        workload: &Workload,
        sink: F,
    ) -> Result<RuntimeReport>
    where
        F: FnMut(usize, &[u32], &[Matrix], &EmbeddingBreakdown),
    {
        let cfg = self.cfg;
        let times = &workload.arrivals.times_ns;
        if times.is_empty() {
            return Err(CoreError::InvalidConfig(
                "workload has no arrival trace (closed-loop); stamp arrivals first".into(),
            ));
        }
        if engines.len() != cfg.shards {
            return Err(CoreError::InvalidConfig(format!(
                "runtime configured for {} shards but {} engines supplied",
                cfg.shards,
                engines.len()
            )));
        }
        for engine in engines.iter() {
            if cfg.sched.max_batch_size > engine.config().batch_size * 2 {
                return Err(CoreError::InvalidConfig(format!(
                    "max_batch_size {} exceeds the engine's staged capacity {} (2x its batch_size)",
                    cfg.sched.max_batch_size,
                    engine.config().batch_size * 2
                )));
            }
        }

        let start = Instant::now();
        std::thread::scope(|s| {
            let (arrival_tx, arrival_rx) = ring::<(u32, u64)>(cfg.ring_capacity);
            let mut work_txs = Vec::with_capacity(cfg.shards);
            let mut done_rxs = Vec::with_capacity(cfg.shards);
            for engine in engines.iter_mut() {
                let (work_tx, work_rx) = ring::<WorkItem>(cfg.ring_capacity);
                let (done_tx, done_rx) = ring::<Completion>(cfg.ring_capacity);
                work_txs.push(work_tx);
                done_rxs.push(done_rx);
                s.spawn(move || shard_worker(engine, work_rx, done_tx, start));
            }
            s.spawn(move || ingest(times, cfg, start, arrival_tx));
            // The batcher runs right here on the caller's thread, so the
            // sink needs no `Send` bound and fires where the caller
            // expects it.
            let mut b = Batcher {
                cfg,
                workload,
                policy: BatchPolicy::new(cfg.sched)?,
                arrival_rx,
                work_txs,
                done_rxs,
                start,
                sink,
                report: blank_report(workload),
                latencies: Vec::with_capacity(times.len()),
                hist: vec![0; cfg.sched.max_batch_size + 1],
                batches_per_shard: vec![0; cfg.shards],
                modeled_service_ns: 0.0,
                measured_service_ns: 0.0,
                seq: 0,
                in_flight: 0,
                last_done_wall: 0,
                pending_triggers: Vec::new(),
            };
            if cfg.deterministic {
                b.run_deterministic()?;
            } else {
                b.run_wall()?;
            }
            Ok(b.finish())
        })
    }
}

/// Replays the arrival trace into the arrival ring: paced to the
/// (scaled) wall clock, or as fast as backpressure allows when
/// deterministic. Exits early if the batcher is gone.
fn ingest(times: &[u64], cfg: RuntimeConfig, start: Instant, mut tx: Producer<(u32, u64)>) {
    for (id, &at_ns) in times.iter().enumerate() {
        if !cfg.deterministic {
            sleep_until(start, modeled_to_wall(at_ns, cfg.time_scale));
        }
        if tx.push_blocking((id as u32, at_ns)).is_err() {
            return;
        }
    }
    // Dropping `tx` is the end-of-stream signal.
}

/// One shard: executes every batch the batcher dispatches, measuring
/// the wall cost of each modeled pipeline. Exits on end-of-stream, on
/// engine error (after reporting it), or when the batcher is gone.
fn shard_worker(
    engine: &mut UpdlrmEngine,
    mut work_rx: Consumer<WorkItem>,
    mut done_tx: Producer<Completion>,
    start: Instant,
) {
    while let Some(item) = work_rx.pop_blocking() {
        let t0 = Instant::now();
        let mut pooled = Vec::new();
        let mut breakdown = EmbeddingBreakdown::default();
        let res = engine.serve_stream(std::slice::from_ref(&item.batch), |_, p, bd| {
            pooled = p.to_vec();
            breakdown = *bd;
        });
        let service_wall_ns = t0.elapsed().as_nanos() as u64;
        let done_wall_ns = start.elapsed().as_nanos() as u64;
        let msg = match res {
            Ok(_) => Completion::Done {
                seq: item.seq,
                ids: item.ids,
                pooled,
                breakdown,
                service_wall_ns,
                done_wall_ns,
            },
            Err(e) => Completion::Failed(e),
        };
        let failed = matches!(msg, Completion::Failed(_));
        if done_tx.push_blocking(msg).is_err() || failed {
            return;
        }
    }
}

/// Modeled ns → wall ns under `time_scale`.
fn modeled_to_wall(modeled_ns: u64, time_scale: f64) -> u64 {
    (modeled_ns as f64 * time_scale) as u64
}

/// Sleeps until `target_ns` of wall time since `start`, using coarse
/// sleeps far out and yields close in (the CI container has one CPU —
/// a hard spin would starve the threads this one is waiting on).
fn sleep_until(start: Instant, target_ns: u64) {
    loop {
        let elapsed = start.elapsed().as_nanos() as u64;
        if elapsed >= target_ns {
            return;
        }
        let remaining = target_ns - elapsed;
        if remaining > 500_000 {
            std::thread::sleep(std::time::Duration::from_nanos(remaining / 2));
        } else {
            std::thread::yield_now();
        }
    }
}

fn blank_report(workload: &Workload) -> SchedReport {
    SchedReport {
        requests: workload.arrivals.times_ns.len() as u64,
        admitted: 0,
        completed: 0,
        shed: 0,
        rejected: 0,
        blocked: 0,
        batches: 0,
        trigger_size: 0,
        trigger_deadline: 0,
        trigger_drain: 0,
        queue_high_water: 0,
        mean_batch_size: 0.0,
        offered_qps: workload.arrivals.measured_offered_qps(),
        achieved_qps: 0.0,
        makespan_ns: 0.0,
        mean_latency_ns: 0.0,
        p50_latency_ns: 0.0,
        p95_latency_ns: 0.0,
        p99_latency_ns: 0.0,
        max_latency_ns: 0.0,
    }
}

/// The batcher's whole world: rings on both sides, the clock-agnostic
/// policy in the middle, and the accounting the report is built from.
struct Batcher<'a, F> {
    cfg: RuntimeConfig,
    workload: &'a Workload,
    policy: BatchPolicy,
    arrival_rx: Consumer<(u32, u64)>,
    work_txs: Vec<Producer<WorkItem>>,
    done_rxs: Vec<Consumer<Completion>>,
    start: Instant,
    sink: F,
    report: SchedReport,
    /// Per-request latencies: modeled ns when deterministic, measured
    /// wall ns otherwise.
    latencies: Vec<u64>,
    hist: Vec<u64>,
    batches_per_shard: Vec<u64>,
    modeled_service_ns: f64,
    measured_service_ns: f64,
    seq: usize,
    // Wall-mode state (unused when deterministic: the lockstep loop
    // never has more than one batch in flight).
    in_flight: usize,
    last_done_wall: u64,
    /// Launch triggers of in-flight batches, keyed by seq because
    /// completions arrive out of order across shards. Bounded by the
    /// rings, so linear scans are fine.
    pending_triggers: Vec<(usize, SchedTrigger)>,
}

impl<F> Batcher<'_, F>
where
    F: FnMut(usize, &[u32], &[Matrix], &EmbeddingBreakdown),
{
    /// Folds an admission outcome into the report. Returns `true` when
    /// the arrival was consumed (`false` = held at a blocked door).
    fn apply_admit(&mut self, outcome: AdmitOutcome) -> bool {
        match outcome {
            AdmitOutcome::Admitted { depth } => {
                self.report.admitted += 1;
                self.report.queue_high_water = self.report.queue_high_water.max(depth as u64);
                true
            }
            AdmitOutcome::AdmittedAfterShed { depth, .. } => {
                self.report.shed += 1;
                self.report.admitted += 1;
                self.report.queue_high_water = self.report.queue_high_water.max(depth as u64);
                true
            }
            AdmitOutcome::Rejected => {
                self.report.rejected += 1;
                true
            }
            AdmitOutcome::Blocked => false,
        }
    }

    /// Assembles the just-taken batch into a fresh [`WorkItem`] for the
    /// round-robin shard of the current `seq`.
    fn make_item(&self, ids: &[u32]) -> WorkItem {
        let mut batch = QueryBatch {
            sparse: vec![Default::default(); self.workload.config.num_tables],
            ..Default::default()
        };
        assemble_into(self.workload, ids, &mut batch);
        WorkItem {
            seq: self.seq,
            ids: ids.to_vec(),
            batch,
        }
    }

    /// Deterministic-mode dispatch: the lockstep loop immediately waits
    /// for the completion, so a plain blocking push cannot deadlock.
    /// Returns the shard the batch went to.
    fn dispatch_lockstep(&mut self, ids: &[u32]) -> Result<usize> {
        let shard = self.seq % self.cfg.shards;
        let item = self.make_item(ids);
        if self.work_txs[shard].push_blocking(item).is_err() {
            return Err(CoreError::Invariant(format!(
                "shard {shard} worker exited before batch {} was dispatched",
                self.seq
            )));
        }
        self.batches_per_shard[shard] += 1;
        self.seq += 1;
        Ok(shard)
    }

    /// Wall-mode dispatch. Must NOT block without draining completions:
    /// with a full work ring *and* a full completion ring, the worker
    /// blocks pushing its completion and a blocked batcher would never
    /// drain it — a cycle. So this spins on `try_push`, draining
    /// completions between attempts.
    fn dispatch_wall(&mut self, ids: &[u32], trigger: SchedTrigger) -> Result<()> {
        let shard = self.seq % self.cfg.shards;
        self.pending_triggers.push((self.seq, trigger));
        let mut item = self.make_item(ids);
        loop {
            match self.work_txs[shard].try_push(item) {
                Ok(()) => break,
                Err(back) => {
                    if self.work_txs[shard].is_disconnected() {
                        return Err(CoreError::Invariant(format!(
                            "shard {shard} worker exited before batch {} was dispatched",
                            self.seq
                        )));
                    }
                    item = back;
                    self.drain_completions()?;
                    std::thread::yield_now();
                }
            }
        }
        self.batches_per_shard[shard] += 1;
        self.seq += 1;
        self.in_flight += 1;
        Ok(())
    }

    /// Books every completion currently waiting on any shard's ring
    /// (non-blocking): trigger attribution, measured latency, sink.
    fn drain_completions(&mut self) -> Result<()> {
        let times = &self.workload.arrivals.times_ns;
        let scale = self.cfg.time_scale;
        for shard in 0..self.cfg.shards {
            while let Some(msg) = self.done_rxs[shard].try_pop() {
                match msg {
                    Completion::Done {
                        seq,
                        ids: done_ids,
                        pooled,
                        breakdown,
                        service_wall_ns,
                        done_wall_ns,
                    } => {
                        self.in_flight -= 1;
                        self.last_done_wall = self.last_done_wall.max(done_wall_ns);
                        let slot = self
                            .pending_triggers
                            .iter()
                            .position(|&(s, _)| s == seq)
                            .expect("every dispatched seq has a pending trigger");
                        let (_, trigger) = self.pending_triggers.swap_remove(slot);
                        self.book_completion(
                            trigger,
                            &done_ids,
                            &pooled,
                            &breakdown,
                            seq,
                            service_wall_ns,
                        );
                        for &id in &done_ids {
                            // Open-loop latency: measured completion
                            // minus *ideal* arrival, so ingest lag
                            // counts against us (no coordinated
                            // omission).
                            let ideal = modeled_to_wall(times[id as usize], scale);
                            self.latencies.push(done_wall_ns.saturating_sub(ideal));
                        }
                    }
                    Completion::Failed(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Books a completed batch: trigger counts, histogram, service
    /// sums, sink. Latencies are the caller's business (the two modes
    /// measure them on different clocks).
    fn book_completion(
        &mut self,
        trigger: SchedTrigger,
        ids: &[u32],
        pooled: &[Matrix],
        breakdown: &EmbeddingBreakdown,
        seq: usize,
        service_wall_ns: u64,
    ) {
        self.report.batches += 1;
        match trigger {
            SchedTrigger::Size => self.report.trigger_size += 1,
            SchedTrigger::Deadline => self.report.trigger_deadline += 1,
            SchedTrigger::Drain => self.report.trigger_drain += 1,
        }
        self.hist[ids.len()] += 1;
        self.report.completed += ids.len() as u64;
        self.modeled_service_ns += breakdown.total_ns();
        self.measured_service_ns += service_wall_ns as f64;
        (self.sink)(seq, ids, pooled, breakdown);
    }

    /// The oracle-locked mode: modeled time in lockstep, mirroring the
    /// discrete-event loop decision for decision (see the module docs
    /// for why the one-arrival lookahead and the per-batch wait are
    /// what make the replay exact).
    fn run_deterministic(&mut self) -> Result<()> {
        let times = &self.workload.arrivals.times_ns;
        let mut peeked: Option<(u32, u64)> = None;
        let mut eos = false;
        let mut now = 0u64;
        let mut engine_free = 0u64;
        let mut door_blocked = false;
        let mut blocked_counted = 0u32;
        let mut ids = Vec::with_capacity(self.cfg.sched.max_batch_size);

        loop {
            // One-arrival lookahead: block until the next arrival (or
            // end-of-stream) is known — every decision below needs it.
            if peeked.is_none() && !eos {
                match self.arrival_rx.pop_blocking() {
                    Some(a) => peeked = Some(a),
                    None => eos = true,
                }
            }

            if self.policy.is_empty() {
                let Some((id, at)) = peeked else { break };
                // Jump the clock to the next arrival; an empty queue
                // always has room so the door reopens.
                now = now.max(at);
                door_blocked = false;
                let outcome = self.policy.admit(id, at);
                let consumed = self.apply_admit(outcome);
                debug_assert!(consumed, "empty queue cannot block");
                peeked = None;
                continue;
            }

            let plan = self
                .policy
                .launch_at(now, engine_free, peeked.is_none())
                .expect("queue is nonempty");

            if let Some((id, at)) = peeked {
                if !door_blocked && at <= plan.at_ns {
                    now = now.max(at);
                    let outcome = self.policy.admit(id, at);
                    if self.apply_admit(outcome) {
                        peeked = None;
                    } else {
                        door_blocked = true;
                        if id >= blocked_counted {
                            self.report.blocked += 1;
                            blocked_counted = id + 1;
                        }
                    }
                    continue;
                }
            }

            // Launch, in lockstep with the oracle: dispatch, then wait
            // for this batch's completion before modeled time advances.
            now = plan.at_ns;
            let newest = self.policy.take_batch(&mut ids).expect("queue is nonempty");
            if newest > now {
                return Err(CoreError::Invariant(format!(
                    "batch {} launches at {now} ns but contains an arrival \
                     admitted at {newest} ns",
                    self.seq
                )));
            }
            let seq = self.seq;
            let shard = self.dispatch_lockstep(&ids)?;
            let (done_ids, pooled, breakdown, service_wall_ns) =
                match self.done_rxs[shard].pop_blocking() {
                    Some(Completion::Done {
                        seq: done_seq,
                        ids,
                        pooled,
                        breakdown,
                        service_wall_ns,
                        ..
                    }) => {
                        debug_assert_eq!(done_seq, seq, "lockstep completion order");
                        (ids, pooled, breakdown, service_wall_ns)
                    }
                    Some(Completion::Failed(e)) => return Err(e),
                    None => {
                        return Err(CoreError::Invariant(format!(
                            "shard {shard} worker exited before batch {seq} completed"
                        )))
                    }
                };
            engine_free = now.saturating_add(service_ns_to_u64(breakdown.total_ns()));
            self.book_completion(
                plan.trigger,
                &done_ids,
                &pooled,
                &breakdown,
                seq,
                service_wall_ns,
            );
            for &id in &done_ids {
                // arrival <= now <= engine_free, so this never wraps.
                self.latencies.push(engine_free - times[id as usize]);
            }
            door_blocked = false;
        }
        self.report.makespan_ns = engine_free as f64;
        Ok(())
    }

    /// The wall-clock mode: the batcher polls a monotonic clock (mapped
    /// to modeled ns by `time_scale`), shards drain concurrently, and
    /// latencies are measured, not modeled.
    fn run_wall(&mut self) -> Result<()> {
        let scale = self.cfg.time_scale;
        let mut peeked: Option<(u32, u64)> = None;
        let mut eos = false;
        let mut door_blocked = false;
        let mut blocked_counted = 0u32;
        let mut ids = Vec::with_capacity(self.cfg.sched.max_batch_size);

        loop {
            // 1. Drain completions from every shard (non-blocking).
            self.drain_completions()?;

            // 2. Admit whatever the ingest thread has delivered.
            if self.policy.is_empty() {
                door_blocked = false;
            }
            while !door_blocked {
                if peeked.is_none() {
                    match self.arrival_rx.try_pop() {
                        Some(a) => peeked = Some(a),
                        None => {
                            // Empty + producer gone = end of stream;
                            // re-pop after the liveness load so a value
                            // pushed between the two cannot be missed.
                            if self.arrival_rx.is_disconnected() {
                                match self.arrival_rx.try_pop() {
                                    Some(a) => peeked = Some(a),
                                    None => eos = true,
                                }
                            }
                        }
                    }
                }
                let Some((id, at)) = peeked else { break };
                let outcome = self.policy.admit(id, at);
                if self.apply_admit(outcome) {
                    peeked = None;
                } else {
                    door_blocked = true;
                    if id >= blocked_counted {
                        self.report.blocked += 1;
                        blocked_counted = id + 1;
                    }
                }
            }

            let drained = eos && peeked.is_none();
            if self.policy.is_empty() {
                if drained && self.in_flight == 0 {
                    break;
                }
                // Nothing to batch; give ingest / workers real CPU
                // time (on one core a yield loop would fight the very
                // worker whose completion it waits for).
                std::thread::sleep(std::time::Duration::from_micros(50));
                continue;
            }

            // 3. Launch when the policy says so, on the measured clock.
            // `engine_free = 0`: shard availability is expressed by
            // ring backpressure, not by a single modeled server.
            let now = (self.start.elapsed().as_nanos() as f64 / scale) as u64;
            let plan = self
                .policy
                .launch_at(now, 0, drained)
                .expect("queue is nonempty");
            if plan.at_ns <= now {
                self.policy.take_batch(&mut ids).expect("queue is nonempty");
                self.dispatch_wall(&ids, plan.trigger)?;
                door_blocked = false;
            } else {
                // Sleep toward the planned launch, but wake early: a
                // new arrival can pull the launch forward (size
                // trigger) and completions free ring slots.
                let target = modeled_to_wall(plan.at_ns, scale);
                let elapsed = self.start.elapsed().as_nanos() as u64;
                let slice = (target.saturating_sub(elapsed)).min(100_000);
                sleep_until(self.start, elapsed + slice);
            }
        }
        self.report.makespan_ns = self.last_done_wall as f64;
        Ok(())
    }

    /// Derives the f64 statistics and packages the report — the same
    /// math, in the same order, as the modeled scheduler, so the
    /// deterministic mode's report is bit-identical to the oracle's.
    fn finish(mut self) -> RuntimeReport {
        let makespan = self.report.makespan_ns;
        self.report.achieved_qps = if makespan > 0.0 {
            self.report.completed as f64 * NS_PER_SEC / makespan
        } else {
            0.0
        };
        self.report.mean_batch_size = if self.report.batches > 0 {
            self.report.completed as f64 / self.report.batches as f64
        } else {
            0.0
        };
        self.latencies.sort_unstable();
        let lat_stats: Vec<f64> = self.latencies.iter().map(|&l| l as f64).collect();
        if let Some(&max) = self.latencies.last() {
            self.report.max_latency_ns = max as f64;
            self.report.mean_latency_ns = self.latencies.iter().map(|&l| l as u128).sum::<u128>()
                as f64
                / self.latencies.len() as f64;
        }
        self.report.p50_latency_ns = percentile(&lat_stats, 0.50);
        self.report.p95_latency_ns = percentile(&lat_stats, 0.95);
        self.report.p99_latency_ns = percentile(&lat_stats, 0.99);
        debug_assert!(report_is_finite(&self.report));

        let wall_elapsed_ns = self.start.elapsed().as_nanos() as f64;
        RuntimeReport {
            wall: WallStats {
                wall_elapsed_ns,
                measured_qps: if wall_elapsed_ns > 0.0 {
                    self.report.completed as f64 * NS_PER_SEC / wall_elapsed_ns
                } else {
                    0.0
                },
                modeled_service_ns: self.modeled_service_ns,
                measured_service_ns: self.measured_service_ns,
                time_scale: self.cfg.time_scale,
            },
            sched: self.report,
            shards: self.cfg.shards,
            deterministic: self.cfg.deterministic,
            batches_per_shard: self.batches_per_shard,
            batch_histogram: self.hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(Runtime::new(RuntimeConfig::default()).is_ok());
        assert!(Runtime::new(RuntimeConfig {
            shards: 0,
            ..RuntimeConfig::default()
        })
        .is_err());
        assert!(Runtime::new(RuntimeConfig {
            ring_capacity: 0,
            ..RuntimeConfig::default()
        })
        .is_err());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                Runtime::new(RuntimeConfig {
                    time_scale: bad,
                    ..RuntimeConfig::default()
                })
                .is_err(),
                "time_scale {bad} must be rejected"
            );
        }
    }

    #[test]
    fn modeled_to_wall_scales() {
        assert_eq!(modeled_to_wall(1_000, 1.0), 1_000);
        assert_eq!(modeled_to_wall(1_000, 2.5), 2_500);
        assert_eq!(modeled_to_wall(0, 10.0), 0);
    }
}
