//! A bounded lock-free single-producer single-consumer ring, hand
//! rolled over [`std::sync::atomic`] (the workspace vendors no
//! concurrency crates, and `std::sync::mpsc` hides the backpressure the
//! runtime wants to reason about).
//!
//! The design is the classic Lamport queue with **monotonic counters**:
//! `tail` counts pushes, `head` counts pops, both only ever grow
//! (wrapping at `usize::MAX`, unreachable in practice), and the
//! occupancy is `tail - head`. Using free-running counters instead of
//! wrapped indices removes the classic "full vs empty" ambiguity
//! without sacrificing a slot.
//!
//! Memory ordering is the minimal Acquire/Release pairing:
//!
//! * the producer *releases* `tail` after writing a slot, and the
//!   consumer *acquires* `tail` before reading it — the slot write
//!   happens-before the slot read;
//! * the consumer *releases* `head` after taking a value out, and the
//!   producer *acquires* `head` before reusing the slot — the read
//!   happens-before the overwrite.
//!
//! Each side loads its own counter `Relaxed` (it is the only writer).
//!
//! Disconnect detection rides on two flags set in `Drop`: a consumer
//! popping from an empty ring whose producer is gone sees end-of-stream
//! (`None` from [`Consumer::pop_blocking`]); a producer pushing into a
//! full ring whose consumer is gone gets its value back instead of
//! spinning forever. Both blocking loops yield first and then back off
//! to short sleeps ([`Backoff`]) — the CI container has a single CPU,
//! so a pure spin would starve the very thread it waits on, and with
//! several idle workers even pure yielding steals enough timeslices to
//! serialize the whole runtime.
//!
//! Correctness is pinned by `tests/ring_interleavings.rs`: an
//! exhaustive loom-style enumeration of operation interleavings against
//! a reference model, plus real-thread stress runs.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Shared state of one ring. `Producer` and `Consumer` each hold an
/// `Arc` to it; the last one out drops any values still queued.
struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Pop counter: only the consumer stores it.
    head: AtomicUsize,
    /// Push counter: only the producer stores it.
    tail: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// The ring hands each value from exactly one thread to exactly one
// other thread, so `T: Send` is the only requirement.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn slot(&self, count: usize) -> *mut MaybeUninit<T> {
        self.buf[count % self.buf.len()].get()
    }
}

/// Wait strategy for the blocking loops: yield for a while (cheap and
/// responsive when the peer is about to act), then sleep, doubling
/// from 50 us up to 1 ms. The growing sleep bounds how much CPU idle
/// waiters burn — on a one-core box, a fleet of workers waking every
/// 50 us costs enough context switches to slow the single thread
/// doing real work several-fold.
struct Backoff {
    yields: u32,
    sleep_us: u64,
}

impl Backoff {
    const YIELDS: u32 = 64;
    const MAX_SLEEP_US: u64 = 1_000;

    fn new() -> Self {
        Backoff {
            yields: 0,
            sleep_us: 50,
        }
    }

    fn wait(&mut self) {
        if self.yields < Self::YIELDS {
            self.yields += 1;
            thread::yield_now();
        } else {
            thread::sleep(std::time::Duration::from_micros(self.sleep_us));
            self.sleep_us = (self.sleep_us * 2).min(Self::MAX_SLEEP_US);
        }
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner now; plain loads are fine through the atomics.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for c in 0..tail.wrapping_sub(head) {
            unsafe { (*self.slot(head.wrapping_add(c))).assume_init_drop() };
        }
    }
}

/// Creates a bounded SPSC ring with room for `capacity` values.
///
/// # Panics
///
/// Panics if `capacity` is zero — a zero-slot ring can never transfer
/// anything.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be >= 1");
    let inner = Arc::new(Inner {
        buf: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

/// The push half of a ring. `!Clone` — single producer by construction.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl<T: Send> Producer<T> {
    /// Pushes `v`, or returns it when the ring is full.
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.inner.buf.len() {
            return Err(v);
        }
        unsafe { (*self.inner.slot(tail)).write(v) };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pushes `v`, waiting until a slot frees. Returns `v` back only
    /// when the consumer is gone (nobody will ever drain the ring).
    pub fn push_blocking(&mut self, mut v: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        loop {
            // Liveness check before the attempt: a dead consumer with a
            // non-full ring would otherwise accept values into the void.
            if !self.inner.consumer_alive.load(Ordering::Acquire) {
                return Err(v);
            }
            match self.try_push(v) {
                Ok(()) => return Ok(()),
                Err(back) => v = back,
            }
            backoff.wait();
        }
    }

    /// True when the consumer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.consumer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.producer_alive.store(false, Ordering::Release);
    }
}

/// The pop half of a ring. `!Clone` — single consumer by construction.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").finish_non_exhaustive()
    }
}

impl<T: Send> Consumer<T> {
    /// Pops the oldest value, or `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*self.inner.slot(head)).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Pops the oldest value, waiting until one arrives. `None` means
    /// end-of-stream: the producer is gone **and** the ring is drained.
    pub fn pop_blocking(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            // Order matters: re-check emptiness *after* seeing the
            // producer dead, or a value pushed between the two loads
            // would be lost.
            if !self.inner.producer_alive.load(Ordering::Acquire) {
                return self.try_pop();
            }
            backoff.wait();
        }
    }

    /// Values currently queued. Racy by nature (the producer may push
    /// concurrently); exact only when the producer is quiescent.
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.inner.head.load(Ordering::Relaxed))
    }

    /// True when nothing is queued right now (same caveat as [`len`]).
    ///
    /// [`len`]: Consumer::len
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer half has been dropped. The ring may still
    /// hold values; end-of-stream is `is_disconnected() && is_empty()`.
    pub fn is_disconnected(&self) -> bool {
        !self.inner.producer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert!(rx.try_pop().is_none());
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "full ring rejects");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn counters_keep_working_across_many_wraps() {
        let (mut tx, mut rx) = ring::<usize>(3);
        for i in 0..1000 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_detection_both_directions() {
        let (tx, mut rx) = ring::<u8>(2);
        assert!(!rx.is_disconnected());
        drop(tx);
        assert!(rx.is_disconnected());
        assert_eq!(rx.pop_blocking(), None, "eos, nothing queued");

        let (mut tx, rx) = ring::<u8>(1);
        tx.try_push(1).unwrap();
        drop(rx);
        assert!(tx.is_disconnected());
        assert_eq!(tx.push_blocking(2), Err(2), "no consumer left");
    }

    #[test]
    fn eos_still_drains_queued_values() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.try_push(7).unwrap();
        tx.try_push(8).unwrap();
        drop(tx);
        assert_eq!(rx.pop_blocking(), Some(7));
        assert_eq!(rx.pop_blocking(), Some(8));
        assert_eq!(rx.pop_blocking(), None);
    }

    #[test]
    fn queued_values_drop_with_the_ring() {
        // A type whose drop is observable.
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut tx, rx) = ring::<Counted>(4);
        for _ in 0..3 {
            tx.try_push(Counted(Arc::clone(&drops))).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "inner drained on drop");
    }
}
