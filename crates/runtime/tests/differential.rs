//! The oracle lock (ISSUE 6 acceptance): `Runtime` in deterministic
//! mode must reproduce `Scheduler::run` **byte for byte** on the same
//! UPWL trace — identical batch composition in launch order, identical
//! pooled embeddings (bit-compared), identical `SchedReport` — for
//! every overload policy and for both 1 and 2 shards. Concurrency is
//! allowed to change the clock, never the semantics.

use dlrm_model::EmbeddingTable;
use runtime::{Runtime, RuntimeConfig};
use scheduler::{OverloadPolicy, SchedConfig, SchedReport, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

const DIM: usize = 32;

fn setup(num_batches: usize, process: ArrivalProcess) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(process);
    let tables = (0..2)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(tables: &[EmbeddingTable], workload: &Workload, max_batch: usize) -> UpdlrmEngine {
    let config = UpdlrmConfig {
        batch_size: max_batch,
        ..UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform)
    };
    UpdlrmEngine::from_workload(config, tables, workload).unwrap()
}

/// One batch as the sink saw it: ids in launch order plus the pooled
/// embeddings reduced to raw bits (exact, not approximate, equality).
type BatchTrace = Vec<(usize, Vec<u32>, Vec<Vec<u32>>)>;

fn oracle(
    tables: &[EmbeddingTable],
    workload: &Workload,
    cfg: SchedConfig,
    max_batch: usize,
) -> (SchedReport, BatchTrace, Vec<u64>) {
    let mut eng = engine(tables, workload, max_batch);
    let mut s = Scheduler::new(cfg).unwrap();
    let mut trace = BatchTrace::new();
    let report = s
        .run(&mut eng, workload, |seq, ids, pooled, _| {
            trace.push((seq, ids.to_vec(), pooled_bits(pooled)));
        })
        .unwrap();
    (report, trace, s.batch_histogram().to_vec())
}

fn pooled_bits(pooled: &[dlrm_model::Matrix]) -> Vec<Vec<u32>> {
    pooled
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn runtime_det(
    tables: &[EmbeddingTable],
    workload: &Workload,
    cfg: SchedConfig,
    max_batch: usize,
    shards: usize,
) -> (runtime::RuntimeReport, BatchTrace) {
    let mut engines: Vec<UpdlrmEngine> = (0..shards)
        .map(|_| engine(tables, workload, max_batch))
        .collect();
    let rt = Runtime::new(RuntimeConfig {
        sched: cfg,
        shards,
        deterministic: true,
        ring_capacity: 4,
        ..RuntimeConfig::default()
    })
    .unwrap();
    let mut trace = BatchTrace::new();
    let report = rt
        .run(&mut engines, workload, |seq, ids, pooled, _| {
            trace.push((seq, ids.to_vec(), pooled_bits(pooled)));
        })
        .unwrap();
    (report, trace)
}

fn assert_locked(process: ArrivalProcess, cfg: SchedConfig, max_batch: usize) {
    let (tables, workload) = setup(3, process);
    let (oracle_report, oracle_trace, oracle_hist) = oracle(&tables, &workload, cfg, max_batch);
    assert!(!oracle_trace.is_empty(), "oracle must form batches");
    for shards in [1usize, 2] {
        let (rt_report, rt_trace) = runtime_det(&tables, &workload, cfg, max_batch, shards);
        assert_eq!(
            rt_report.sched, oracle_report,
            "{} shards / {}: report must be byte-identical",
            shards, cfg.policy
        );
        assert_eq!(
            rt_trace, oracle_trace,
            "{} shards / {}: batches and pooled embeddings must be byte-identical",
            shards, cfg.policy
        );
        assert_eq!(rt_report.batch_histogram, oracle_hist);
        assert_eq!(rt_report.batches_per_shard.len(), shards);
        assert_eq!(
            rt_report.batches_per_shard.iter().sum::<u64>(),
            oracle_report.batches
        );
        assert!(
            rt_report.wall.modeled_service_ns > 0.0 && rt_report.wall.measured_service_ns > 0.0,
            "measured-vs-modeled service walls must be recorded"
        );
    }
}

#[test]
fn deterministic_runtime_matches_oracle_under_light_load() {
    assert_locked(
        ArrivalProcess::poisson(1_000.0, 11),
        SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 50_000,
            queue_cap: 64,
            policy: OverloadPolicy::ShedOldest,
        },
        32,
    );
}

#[test]
fn deterministic_runtime_matches_oracle_under_shedding_saturation() {
    assert_locked(
        ArrivalProcess::poisson(50_000_000.0, 13),
        SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 100_000,
            queue_cap: 48,
            policy: OverloadPolicy::ShedOldest,
        },
        32,
    );
}

#[test]
fn deterministic_runtime_matches_oracle_when_rejecting() {
    assert_locked(
        ArrivalProcess::bursty(20_000_000.0, 17),
        SchedConfig {
            max_batch_size: 16,
            max_wait_ns: 30_000,
            queue_cap: 24,
            policy: OverloadPolicy::RejectNew,
        },
        16,
    );
}

#[test]
fn deterministic_runtime_matches_oracle_when_blocking() {
    assert_locked(
        ArrivalProcess::poisson(50_000_000.0, 19),
        SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 100_000,
            queue_cap: 48,
            policy: OverloadPolicy::Block,
        },
        32,
    );
}

#[test]
fn deterministic_runtime_is_reproducible_across_runs() {
    let (tables, workload) = setup(2, ArrivalProcess::bursty(200_000.0, 23));
    let cfg = SchedConfig {
        max_batch_size: 32,
        max_wait_ns: 50_000,
        queue_cap: 64,
        policy: OverloadPolicy::ShedOldest,
    };
    let (a, ta) = runtime_det(&tables, &workload, cfg, 32, 2);
    let (b, tb) = runtime_det(&tables, &workload, cfg, 32, 2);
    assert_eq!(a.sched, b.sched);
    assert_eq!(ta, tb);
}
