//! Concurrency correctness for the SPSC ring, two ways (ISSUE 6
//! satellite — no external model checker is vendored, so this is a
//! loom-style harness built from scratch):
//!
//! 1. **Exhaustive interleaving enumeration** — the ring has exactly
//!    one producer and one consumer, so every cross-thread history is
//!    some interleaving of the producer's operation sequence with the
//!    consumer's. We enumerate *all* of them (thousands per shape)
//!    and check each against a reference `VecDeque` model: same
//!    accept/reject on every push, same value/empty on every pop, FIFO
//!    order, nothing lost, nothing duplicated. This pins the counter
//!    logic (full/empty detection, wrap behaviour) over the entire
//!    schedule space at operation granularity.
//! 2. **Real-thread stress** — what enumeration cannot see (the
//!    Acquire/Release pairing actually publishing slot writes between
//!    cores) is exercised by high-volume two-thread runs that assert
//!    every value arrives exactly once, in order. Run both via the CI
//!    concurrency job's `RUST_TEST_THREADS=1` and default settings.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use runtime::ring;

/// Runs one schedule: `schedule[i]` says whose operation goes next
/// (true = producer push, false = consumer pop). The ring must agree
/// with the model at every step.
fn run_schedule(capacity: usize, schedule: &[bool]) {
    let (mut tx, mut rx) = ring::<u64>(capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_value = 0u64;
    for (step, &is_push) in schedule.iter().enumerate() {
        if is_push {
            let accepted = tx.try_push(next_value).is_ok();
            let model_accepts = model.len() < capacity;
            assert_eq!(
                accepted, model_accepts,
                "cap {capacity} step {step}: push accept mismatch ({schedule:?})"
            );
            if accepted {
                model.push_back(next_value);
            }
            // The value is "offered" either way; a rejected push in the
            // real runtime retries the same value, which the enumeration
            // models by offering a fresh one (coverage, not replay).
            next_value += 1;
        } else {
            let got = rx.try_pop();
            let want = model.pop_front();
            assert_eq!(
                got, want,
                "cap {capacity} step {step}: pop mismatch ({schedule:?})"
            );
        }
    }
    // Drain: whatever the model still holds must come out, in order.
    while let Some(want) = model.pop_front() {
        assert_eq!(rx.try_pop(), Some(want));
    }
    assert!(rx.try_pop().is_none());
}

/// Enumerates every interleaving of `pushes` producer ops with `pops`
/// consumer ops, depth-first, invoking `run_schedule` on each.
fn enumerate(capacity: usize, pushes: usize, pops: usize) -> usize {
    fn dfs(
        capacity: usize,
        pushes_left: usize,
        pops_left: usize,
        prefix: &mut Vec<bool>,
        count: &mut usize,
    ) {
        if pushes_left == 0 && pops_left == 0 {
            run_schedule(capacity, prefix);
            *count += 1;
            return;
        }
        if pushes_left > 0 {
            prefix.push(true);
            dfs(capacity, pushes_left - 1, pops_left, prefix, count);
            prefix.pop();
        }
        if pops_left > 0 {
            prefix.push(false);
            dfs(capacity, pushes_left, pops_left - 1, prefix, count);
            prefix.pop();
        }
    }
    let mut count = 0;
    dfs(capacity, pushes, pops, &mut Vec::new(), &mut count);
    count
}

#[test]
fn exhaustive_interleavings_small_rings() {
    // C(12,6) = 924 schedules per capacity; capacities 1..=4 cover
    // the degenerate single-slot ring, sizes around the op count, and
    // a ring the schedule can wrap several times.
    for capacity in 1..=4 {
        let n = enumerate(capacity, 6, 6);
        assert_eq!(n, 924, "all interleavings must be visited");
    }
}

#[test]
fn exhaustive_interleavings_asymmetric_ops() {
    // Push-heavy and pop-heavy shapes hit sustained-full and
    // sustained-empty regimes that balanced shapes skim past.
    for capacity in [1, 2, 3] {
        enumerate(capacity, 8, 4);
        enumerate(capacity, 4, 8);
    }
}

#[test]
fn stress_every_value_arrives_exactly_once_in_order() {
    const N: u64 = 100_000;
    for capacity in [1usize, 2, 7, 64] {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let producer = thread::spawn(move || {
            for v in 0..N {
                tx.push_blocking(v).expect("consumer alive");
            }
        });
        let mut expected = 0u64;
        while let Some(v) = rx.pop_blocking() {
            assert_eq!(v, expected, "cap {capacity}: FIFO violated");
            expected += 1;
        }
        assert_eq!(expected, N, "cap {capacity}: values lost");
        producer.join().unwrap();
    }
}

#[test]
fn stress_ping_pong_two_rings() {
    // Request/response over two capacity-1 rings — the runtime's
    // batcher↔worker shape. Any lost wakeup deadlocks the test (and
    // the suite's timeout catches it).
    const N: u64 = 20_000;
    let (mut req_tx, mut req_rx) = ring::<u64>(1);
    let (mut rsp_tx, mut rsp_rx) = ring::<u64>(1);
    let echo = thread::spawn(move || {
        while let Some(v) = req_rx.pop_blocking() {
            if rsp_tx.push_blocking(v * 2).is_err() {
                return;
            }
        }
    });
    for v in 0..N {
        req_tx.push_blocking(v).unwrap();
        assert_eq!(rsp_rx.pop_blocking(), Some(v * 2));
    }
    drop(req_tx);
    echo.join().unwrap();
}

#[test]
fn stress_drop_mid_stream_never_loses_delivered_values() {
    // The consumer hangs up early; the producer must observe the
    // disconnect rather than spin forever, and everything the consumer
    // did take must have been in order.
    let taken = Arc::new(AtomicUsize::new(0));
    let taken2 = Arc::clone(&taken);
    let (mut tx, mut rx) = ring::<usize>(4);
    let consumer = thread::spawn(move || {
        for i in 0..100 {
            match rx.pop_blocking() {
                Some(v) => {
                    assert_eq!(v, i);
                    taken2.fetch_add(1, Ordering::SeqCst);
                }
                None => break,
            }
        }
        // rx drops here — mid-stream hangup.
    });
    let mut pushed = 0usize;
    loop {
        if tx.push_blocking(pushed).is_err() {
            break; // consumer gone
        }
        pushed += 1;
    }
    consumer.join().unwrap();
    assert_eq!(taken.load(Ordering::SeqCst), 100);
    assert!(pushed >= 100, "at least the taken values were pushed");
}
