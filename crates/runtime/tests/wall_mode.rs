//! Wall-clock mode behaviour (ISSUE 6): the runtime on a real clock
//! must conserve requests, produce finite measured statistics, spread
//! work across shards — and, the acceptance criterion, the modeled
//! oracle's latency percentiles must predict the *ordering* of measured
//! per-request latencies between configurations. Absolute wall numbers
//! are machine-dependent; orderings with 40x modeled separation are
//! not.

use dlrm_model::EmbeddingTable;
use runtime::{Runtime, RuntimeConfig, RuntimeReport};
use scheduler::{report_is_finite, OverloadPolicy, SchedConfig, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

fn setup(num_batches: usize, process: ArrivalProcess) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(process);
    let tables = (0..2)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, 32, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engines(
    tables: &[EmbeddingTable],
    workload: &Workload,
    batch_size: usize,
    shards: usize,
) -> Vec<UpdlrmEngine> {
    (0..shards)
        .map(|_| {
            let config = UpdlrmConfig {
                batch_size,
                ..UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform)
            };
            UpdlrmEngine::from_workload(config, tables, workload).unwrap()
        })
        .collect()
}

fn run_wall(
    tables: &[EmbeddingTable],
    workload: &Workload,
    sched: SchedConfig,
    engine_batch: usize,
    shards: usize,
    time_scale: f64,
) -> RuntimeReport {
    let mut eng = engines(tables, workload, engine_batch, shards);
    let rt = Runtime::new(RuntimeConfig {
        sched,
        shards,
        time_scale,
        deterministic: false,
        ring_capacity: 8,
    })
    .unwrap();
    rt.run(&mut eng, workload, |_, _, _, _| {}).unwrap()
}

#[test]
fn wall_mode_conserves_requests_and_reports_finite_stats() {
    // Queue capacity above the whole trace: nothing may shed, so every
    // request completes no matter how the wall clock jitters.
    let (tables, workload) = setup(2, ArrivalProcess::poisson(500_000.0, 31));
    let sched = SchedConfig {
        max_batch_size: 64,
        max_wait_ns: 100_000,
        queue_cap: 256,
        policy: OverloadPolicy::ShedOldest,
    };
    for shards in [1usize, 2] {
        let r = run_wall(&tables, &workload, sched, 64, shards, 20.0);
        assert_eq!(r.sched.completed, r.sched.requests, "{shards} shards");
        assert_eq!(r.sched.shed + r.sched.rejected, 0);
        assert_eq!(
            r.sched.completed + r.sched.shed + r.sched.rejected,
            r.sched.requests
        );
        assert!(report_is_finite(&r.sched), "{:?}", r.sched);
        assert!(r.sched.makespan_ns > 0.0, "measured makespan");
        assert!(r.sched.p95_latency_ns > 0.0, "measured latency");
        assert!(r.wall.wall_elapsed_ns > 0.0 && r.wall.measured_qps > 0.0);
        assert!(r.wall.modeled_service_ns > 0.0 && r.wall.measured_service_ns > 0.0);
        assert_eq!(r.batches_per_shard.len(), shards);
        assert_eq!(r.batches_per_shard.iter().sum::<u64>(), r.sched.batches);
        assert_eq!(
            r.batch_histogram.iter().sum::<u64>(),
            r.sched.batches,
            "histogram mass equals batch count"
        );
        if shards == 2 && r.sched.batches >= 2 {
            assert!(
                r.batches_per_shard.iter().all(|&b| b > 0),
                "round-robin uses every shard: {:?}",
                r.batches_per_shard
            );
        }
    }
}

#[test]
fn modeled_percentiles_predict_measured_latency_ordering() {
    // Two configurations whose only difference is the batching
    // deadline: 2 ms vs 40 ms, both far above the ~0.3-1 ms modeled
    // service per batch so the deadline (not the server) dominates
    // latency. The modeled oracle separates their p95 by ~17x; the
    // measured wall run must agree on the ordering.
    let (tables, workload) = setup(4, ArrivalProcess::poisson(2_000.0, 37));
    let hasty = SchedConfig {
        max_batch_size: 128,
        max_wait_ns: 2_000_000,
        queue_cap: 512,
        policy: OverloadPolicy::ShedOldest,
    };
    let patient = SchedConfig {
        max_wait_ns: 40_000_000,
        ..hasty
    };

    let modeled = |sched: SchedConfig| {
        let mut eng = engines(&tables, &workload, 64, 1);
        let mut s = Scheduler::new(sched).unwrap();
        s.run(&mut eng[0], &workload, |_, _, _, _| {}).unwrap()
    };
    let m_hasty = modeled(hasty);
    let m_patient = modeled(patient);
    assert!(
        m_patient.p95_latency_ns > m_hasty.p95_latency_ns * 4.0,
        "oracle must separate the configs: {} vs {}",
        m_patient.p95_latency_ns,
        m_hasty.p95_latency_ns
    );

    // Stretch modeled time 2x so host compute per batch (~1-10 ms on
    // one CPU) stays below the inter-launch gaps and the wall run
    // tracks the trace instead of its own compute cost.
    let w_hasty = run_wall(&tables, &workload, hasty, 64, 1, 2.0);
    let w_patient = run_wall(&tables, &workload, patient, 64, 1, 2.0);
    assert_eq!(w_hasty.sched.completed, w_hasty.sched.requests);
    assert_eq!(w_patient.sched.completed, w_patient.sched.requests);
    assert!(
        w_patient.sched.p95_latency_ns > w_hasty.sched.p95_latency_ns,
        "measured ordering must match the oracle: patient {} ns vs hasty {} ns \
         (modeled {} vs {})",
        w_patient.sched.p95_latency_ns,
        w_hasty.sched.p95_latency_ns,
        m_patient.p95_latency_ns,
        m_hasty.p95_latency_ns
    );
    assert!(
        w_patient.sched.p50_latency_ns > w_hasty.sched.p50_latency_ns,
        "median ordering too: {} vs {}",
        w_patient.sched.p50_latency_ns,
        w_hasty.sched.p50_latency_ns
    );
}

#[test]
fn wall_mode_rejects_closed_loop_and_mismatched_shards() {
    let (tables, workload) = setup(1, ArrivalProcess::poisson(1_000.0, 41));
    let rt = Runtime::new(RuntimeConfig {
        shards: 2,
        ..RuntimeConfig::default()
    })
    .unwrap();
    // 1 engine for 2 shards.
    let mut one = engines(&tables, &workload, 64, 1);
    assert!(rt.run(&mut one, &workload, |_, _, _, _| {}).is_err());

    // No arrival trace.
    let mut closed = workload.clone();
    closed.arrivals = workloads::ArrivalTrace::closed_loop();
    let mut two = engines(&tables, &closed, 64, 2);
    let err = rt.run(&mut two, &closed, |_, _, _, _| {}).unwrap_err();
    assert!(err.to_string().contains("arrival"), "{err}");
}
