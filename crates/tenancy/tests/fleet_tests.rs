//! Integration proofs for the multi-tenant fleet:
//!
//! * differential equality with the single-tenant `scheduler` event
//!   loop (one-tenant fleet == `Scheduler::run`, field for field and
//!   bit for bit);
//! * content isolation (per-tenant pooled embeddings bit-identical to
//!   the same tenant served alone);
//! * determinism (two same-seed runs serialize byte-identically);
//! * performance isolation (DRR bounds a victim's p99 under an
//!   adversarial neighbor; FCFS does not — both directions gated);
//! * weighted arbitration (heavier tenants see lower latency under
//!   saturation) and the capacity sweep's knee.

use dlrm_model::EmbeddingTable;
use scheduler::{report_is_finite, Scheduler};
use tenancy::{
    capacity_sweep, fleet_report_is_finite, Arbitration, ArrivalKind, FleetConfig, TenantFleet,
    TenantSpec,
};
use updlrm_core::{UpdlrmConfig, UpdlrmEngine};
use workloads::{TraceConfig, Workload};

const FLEET_DPUS: usize = 16;

fn fleet_cfg(arbitration: Arbitration) -> FleetConfig {
    FleetConfig {
        fleet_dpus: FLEET_DPUS,
        quantum_ns: 100_000,
        arbitration,
        telemetry: false,
        ..FleetConfig::default()
    }
}

/// Replicates `TenantFleet::from_specs`'s engine construction so the
/// differential test drives the *same* engine through the
/// single-tenant scheduler.
fn solo_engine_and_workload(spec: &TenantSpec) -> (UpdlrmEngine, Workload) {
    let dspec = spec.dataset_spec().unwrap();
    let mut workload = Workload::generate(
        &dspec,
        TraceConfig {
            num_tables: spec.num_tables,
            num_batches: spec.num_batches,
            seed: spec.seed,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(spec.arrival_process());
    let tables: Vec<EmbeddingTable> = (0..spec.num_tables)
        .map(|t| {
            EmbeddingTable::random_integer_valued(
                dspec.num_items,
                spec.dim,
                3,
                spec.seed.wrapping_add(t as u64),
            )
            .unwrap()
        })
        .collect();
    let config = UpdlrmConfig {
        batch_size: spec.max_batch,
        telemetry: false,
        embed_dtype: spec.dtype,
        ..UpdlrmConfig::with_dpus(FLEET_DPUS, spec.strategy)
    };
    let engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
    (engine, workload)
}

fn victim() -> TenantSpec {
    TenantSpec {
        name: "victim".into(),
        qps: 10_000.0,
        num_batches: 10,
        max_wait_us: 500,
        weight: 2.0,
        seed: 11,
        ..TenantSpec::default()
    }
}

fn adversary() -> TenantSpec {
    TenantSpec {
        name: "adversary".into(),
        qps: 30_000.0,
        arrival: ArrivalKind::Bursty,
        num_batches: 30,
        max_wait_us: 200,
        max_batch: 8,
        weight: 1.0,
        seed: 12,
        ..TenantSpec::default()
    }
}

/// Pooled-embedding bit stream of one tenant across a whole run.
fn run_bits(fleet: &mut TenantFleet, tenants: usize) -> (Vec<Vec<u32>>, tenancy::FleetReport) {
    let mut bits = vec![Vec::new(); tenants];
    let report = fleet
        .run(|tenant, _, _, pooled, _| {
            for m in pooled {
                bits[tenant].extend(m.as_slice().iter().map(|v| v.to_bits()));
            }
        })
        .unwrap();
    (bits, report)
}

#[test]
fn one_tenant_fleet_equals_the_single_tenant_scheduler() {
    // A saturating spec so shedding, size triggers and the overload
    // path are all exercised, for both arbitration disciplines.
    for arbitration in [Arbitration::Drr, Arbitration::Fcfs] {
        let spec = TenantSpec {
            name: "only".into(),
            qps: 100_000.0,
            queue_cap: 64,
            num_batches: 8,
            seed: 3,
            ..TenantSpec::default()
        };

        let (mut engine, workload) = solo_engine_and_workload(&spec);
        let mut sched = Scheduler::new(spec.sched_config()).unwrap();
        let mut solo_bits: Vec<u32> = Vec::new();
        let solo = sched
            .run(&mut engine, &workload, |_, _, pooled, _| {
                for m in pooled {
                    solo_bits.extend(m.as_slice().iter().map(|v| v.to_bits()));
                }
            })
            .unwrap();

        let mut fleet =
            TenantFleet::from_specs(std::slice::from_ref(&spec), fleet_cfg(arbitration)).unwrap();
        let (bits, report) = run_bits(&mut fleet, 1);

        // Same batches, same embeddings, same latencies, same derived
        // stats — the whole report, field for field.
        assert_eq!(bits[0], solo_bits, "{arbitration:?}");
        assert_eq!(report.tenants[0].sched, solo, "{arbitration:?}");
        assert!(solo.shed > 0, "spec must exercise overload: {solo:?}");
        assert!(fleet_report_is_finite(&report));
    }
}

#[test]
fn shared_fleet_embeddings_are_bit_identical_to_solo_serving() {
    // Two deliberately heterogeneous tenants: different datasets,
    // strategies, dtypes, arrival processes and batching policies.
    let a = TenantSpec {
        name: "search".into(),
        qps: 40_000.0,
        dataset: "movie".into(),
        strategy: tenancy::parse_strategy("ca").unwrap(),
        num_batches: 6,
        seed: 21,
        ..TenantSpec::default()
    };
    let b = TenantSpec {
        name: "ads".into(),
        qps: 25_000.0,
        arrival: ArrivalKind::Bursty,
        dtype: dlrm_model::EmbedDtype::Int8,
        max_batch: 16,
        num_batches: 6,
        seed: 22,
        ..TenantSpec::default()
    };

    let mut duo =
        TenantFleet::from_specs(&[a.clone(), b.clone()], fleet_cfg(Arbitration::Drr)).unwrap();
    let (duo_bits, duo_report) = run_bits(&mut duo, 2);

    for (i, spec) in [a, b].into_iter().enumerate() {
        let mut solo =
            TenantFleet::from_specs(std::slice::from_ref(&spec), fleet_cfg(Arbitration::Drr))
                .unwrap();
        let (solo_bits, solo_report) = run_bits(&mut solo, 1);
        assert_eq!(
            duo_bits[i], solo_bits[0],
            "tenant '{}' pooled embeddings must not change when sharing",
            spec.name
        );
        // Admission and batch formation are untouched by sharing; only
        // completion-time statistics may move.
        let (d, s) = (&duo_report.tenants[i].sched, &solo_report.tenants[0].sched);
        assert_eq!(
            (d.admitted, d.shed, d.rejected),
            (s.admitted, s.shed, s.rejected)
        );
        assert_eq!((d.batches, d.completed), (s.batches, s.completed));
        assert_eq!(
            (d.trigger_size, d.trigger_deadline, d.trigger_drain),
            (s.trigger_size, s.trigger_deadline, s.trigger_drain)
        );
    }
}

#[test]
fn two_runs_serialize_byte_identically() {
    let specs = [victim(), adversary()];
    let mut cfg = fleet_cfg(Arbitration::Drr);
    cfg.telemetry = true;
    let jsons: Vec<(String, String)> = (0..2)
        .map(|_| {
            let mut fleet = TenantFleet::from_specs(&specs, cfg.clone()).unwrap();
            let (_, report) = run_bits(&mut fleet, 2);
            let snap = fleet.metrics_snapshot();
            assert_eq!(snap.schema_version, updlrm_core::SNAPSHOT_SCHEMA_VERSION);
            assert_eq!(snap.tenants.len(), 2, "v5 per-tenant breakout");
            assert_eq!(snap.tenants[0].name, "victim");
            assert_eq!(snap.tenants[1].name, "adversary");
            assert!(snap.tenants[0].completed > 0);
            (
                serde::json::to_string_pretty(&report),
                serde::json::to_string_pretty(&snap),
            )
        })
        .collect();
    assert_eq!(
        jsons[0].0, jsons[1].0,
        "fleet reports must be byte-identical"
    );
    assert_eq!(jsons[0].1, jsons[1].1, "snapshots must be byte-identical");

    // And the report round-trips through its serde derives.
    let back: tenancy::FleetReport = serde::json::from_str(&jsons[0].0).unwrap();
    assert_eq!(serde::json::to_string_pretty(&back), jsons[0].0);
}

#[test]
fn drr_bounds_the_victim_while_fcfs_degrades_it() {
    // The noisy-neighbor contract, same shape as benches/tenants.rs:
    // with arbitration on, a bursty adversary must not push the steady
    // victim's p99 beyond 1.5x its solo baseline; with FCFS the same
    // pair must blow past it (anti-vacuous in both directions).
    let mut solo = TenantFleet::from_specs(&[victim()], fleet_cfg(Arbitration::Drr)).unwrap();
    let (_, solo_report) = run_bits(&mut solo, 1);
    let solo_p99 = solo_report.tenants[0].sched.p99_latency_ns;
    assert!(solo_p99 > 0.0);

    let mut p99 = Vec::new();
    for arbitration in [Arbitration::Drr, Arbitration::Fcfs] {
        let mut duo =
            TenantFleet::from_specs(&[victim(), adversary()], fleet_cfg(arbitration)).unwrap();
        let (_, report) = run_bits(&mut duo, 2);
        assert!(
            report.fleet_utilization > 0.9,
            "the mix must saturate the fleet"
        );
        assert!(
            report.tenants[1].sched.shed > 0,
            "the adversary must overload itself"
        );
        p99.push(report.tenants[0].sched.p99_latency_ns);
    }
    let (drr, fcfs) = (p99[0], p99[1]);
    assert!(
        drr <= 1.5 * solo_p99,
        "DRR victim p99 {drr} must stay within 1.5x solo {solo_p99}"
    );
    assert!(
        fcfs > 1.5 * solo_p99,
        "FCFS victim p99 {fcfs} must degrade past 1.5x solo {solo_p99} (gate is vacuous otherwise)"
    );
    assert!(fcfs > drr, "arbitration must be doing the protecting");
}

#[test]
fn heavier_weights_buy_lower_latency_under_saturation() {
    // Two identical saturating tenants, 3:1 weights. Work conservation
    // means both complete the same batches eventually (equal busy
    // shares); the weight shows up where it should — latency.
    let mk = |name: &str, weight: f64| TenantSpec {
        name: name.into(),
        qps: 60_000.0,
        num_batches: 8,
        weight,
        seed: 5,
        ..TenantSpec::default()
    };
    let mut fleet = TenantFleet::from_specs(
        &[mk("heavy", 3.0), mk("light", 1.0)],
        fleet_cfg(Arbitration::Drr),
    )
    .unwrap();
    let (_, report) = run_bits(&mut fleet, 2);
    let (h, l) = (&report.tenants[0], &report.tenants[1]);
    assert_eq!(h.fleet_share_configured, 0.75);
    assert_eq!(l.fleet_share_configured, 0.25);
    // Identical specs complete identical work.
    assert_eq!(h.sched.completed, l.sched.completed);
    assert!(
        h.sched.p99_latency_ns < l.sched.p99_latency_ns,
        "3x weight must not lose on p99: heavy {} vs light {}",
        h.sched.p99_latency_ns,
        l.sched.p99_latency_ns
    );
    assert!(
        h.sched.mean_latency_ns < l.sched.mean_latency_ns,
        "heavy {} vs light {}",
        h.sched.mean_latency_ns,
        l.sched.mean_latency_ns
    );
    assert!(report_is_finite(&h.sched) && report_is_finite(&l.sched));
}

#[test]
fn interleaving_rotates_tenant_origins() {
    let specs = [victim(), adversary()];
    let mut on = fleet_cfg(Arbitration::Drr);
    on.telemetry = true;
    let mut off = on.clone();
    off.interleave = false;

    let mut fleet_on = TenantFleet::from_specs(&specs, on).unwrap();
    let (bits_on, r_on) = run_bits(&mut fleet_on, 2);
    let mut fleet_off = TenantFleet::from_specs(&specs, off).unwrap();
    let (bits_off, r_off) = run_bits(&mut fleet_off, 2);

    assert_eq!(r_on.tenants[0].dpu_offset, 0);
    assert_eq!(r_on.tenants[1].dpu_offset, FLEET_DPUS / 2);
    assert!(r_off.tenants.iter().all(|t| t.dpu_offset == 0));
    // The rotation is pure relabeling: modeled behavior is untouched.
    assert_eq!(bits_on, bits_off);
    assert_eq!(r_on.tenants[0].sched, r_off.tenants[0].sched);
    assert_eq!(r_on.tenants[1].sched, r_off.tenants[1].sched);
    assert!(
        r_on.fleet_imbalance >= 1.0,
        "telemetry on gives a real max/mean"
    );
}

#[test]
fn capacity_sweep_finds_the_fleet_size_knee() {
    let spec = TenantSpec {
        slo_p99_us: 900.0,
        ..victim()
    };
    let points = capacity_sweep(
        std::slice::from_ref(&spec),
        &fleet_cfg(Arbitration::Drr),
        &[4, 8, FLEET_DPUS],
    )
    .unwrap();
    assert_eq!(points.len(), 3);
    // 4 DPUs has no feasible tile shape for this catalog at all; the
    // sweep records that instead of aborting.
    assert!(
        !points[0].feasible && !points[0].all_slos_met,
        "{:?}",
        points[0]
    );
    assert!(
        points[1].feasible && !points[1].all_slos_met,
        "8 DPUs cannot hold a 900 us p99: {:?}",
        points[1]
    );
    assert!(points[2].all_slos_met, "{:?}", points[2]);
    assert!(points[2].tenants[0].p99_latency_ns < points[1].tenants[0].p99_latency_ns);
    // Serializable for `updlrm capacity --json`.
    let json = serde::json::to_string_pretty(&points);
    let back: Vec<tenancy::CapacityPoint> = serde::json::from_str(&json).unwrap();
    assert_eq!(back, points);
}

#[test]
fn invalid_fleets_are_rejected() {
    let err = TenantFleet::from_specs(&[], fleet_cfg(Arbitration::Drr)).unwrap_err();
    assert!(err.to_string().contains("at least one tenant"), "{err}");

    let bad = TenantSpec {
        weight: 0.0,
        ..victim()
    };
    let err = TenantFleet::from_specs(&[bad], fleet_cfg(Arbitration::Drr)).unwrap_err();
    assert!(err.to_string().contains("weight"), "{err}");

    let mut cfg = fleet_cfg(Arbitration::Drr);
    cfg.fleet_dpus = 0;
    let err = TenantFleet::from_specs(&[victim()], cfg).unwrap_err();
    assert!(err.to_string().contains("dpus"), "{err}");
}
