//! Tenant and fleet specifications, plus the `--tenants FILE.toml`
//! loader.
//!
//! The workspace deliberately vendors no TOML crate, so the loader
//! implements the small declarative subset the tenant files need: one
//! optional `[fleet]` table, one `[[tenant]]` array-of-tables entry per
//! tenant, and scalar `key = value` pairs (quoted strings, integers,
//! floats, booleans, `#` comments). Anything outside that subset is a
//! parse error with a line number — silently ignoring unknown keys
//! would let a typo'd SLO slip through a capacity plan.

use scheduler::{OverloadPolicy, SchedConfig};
use updlrm_core::PartitionStrategy;
use workloads::{ArrivalProcess, DatasetSpec};

/// How the shared fleet arbitrates between tenants' formed batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Weighted deficit round robin: each visit credits a tenant
    /// `quantum_ns x weight` of fleet time and serves its ready
    /// batches while the deficit covers them. Bounds how long a bursty
    /// tenant can monopolize the fleet ahead of a steady one.
    #[default]
    Drr,
    /// First-come-first-served on batch ready time (ties broken by
    /// tenant index). No isolation: a backlogged tenant's batches all
    /// queue ahead of later-ready victims — the noisy-neighbor
    /// baseline the bench gates against.
    Fcfs,
}

impl Arbitration {
    /// CLI/TOML spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Arbitration::Drr => "drr",
            Arbitration::Fcfs => "fcfs",
        }
    }
}

impl std::str::FromStr for Arbitration {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "drr" => Ok(Arbitration::Drr),
            "fcfs" => Ok(Arbitration::Fcfs),
            other => Err(format!(
                "unknown arbitration '{other}' (expected 'drr' or 'fcfs')"
            )),
        }
    }
}

impl std::fmt::Display for Arbitration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared-fleet parameters (`[fleet]` in the tenants file).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// DPUs in the shared fleet; every tenant's engine partitions its
    /// tables across all of them.
    pub fleet_dpus: usize,
    /// Base DRR quantum in ns of modeled fleet time; tenant `i`'s
    /// per-visit credit is `quantum_ns x weight_i`. Ignored under
    /// [`Arbitration::Fcfs`].
    pub quantum_ns: u64,
    /// Arbitration discipline for the shared fleet.
    pub arbitration: Arbitration,
    /// Rotate each tenant's DPU origin by [`placement::interleaved_offsets`]
    /// so tenants' hot partitions land on different physical DPUs.
    pub interleave: bool,
    /// Record per-engine and fleet telemetry (needed for the per-DPU
    /// aggregate imbalance in the report).
    pub telemetry: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fleet_dpus: 64,
            quantum_ns: 200_000, // 200 us
            arbitration: Arbitration::Drr,
            interleave: true,
            telemetry: true,
        }
    }
}

impl FleetConfig {
    /// Checks the parameters for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.fleet_dpus == 0 {
            return Err("fleet dpus must be >= 1".into());
        }
        if self.quantum_ns == 0 {
            return Err("quantum must be >= 1 ns".into());
        }
        Ok(())
    }
}

/// The arrival process family a tenant uses (shape parameters live on
/// [`TenantSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalKind {
    /// Exponential inter-arrivals at the configured mean rate.
    #[default]
    Poisson,
    /// Two-state MMPP bursts (`burst_factor`, `burst_fraction`).
    Bursty,
}

impl std::str::FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" => Ok(ArrivalKind::Bursty),
            other => Err(format!(
                "unknown arrival '{other}' (expected 'poisson' or 'bursty')"
            )),
        }
    }
}

/// One tenant: its catalog, traffic, batching policy and SLO
/// (`[[tenant]]` in the tenants file).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name (report/snapshot key).
    pub name: String,
    /// Arbitration weight — the tenant's configured fleet share is
    /// `weight / sum(weights)`.
    pub weight: f64,
    /// p99 latency SLO in microseconds; `0` means no SLO.
    pub slo_p99_us: f64,
    /// Mean offered rate, requests per second.
    pub qps: f64,
    /// Arrival process family.
    pub arrival: ArrivalKind,
    /// MMPP burst rate multiplier (bursty only).
    pub burst_factor: f64,
    /// Fraction of modeled time spent bursting (bursty only).
    pub burst_fraction: f64,
    /// Seed for the trace and arrival draws (tables derive from it).
    pub seed: u64,
    /// Dataset short tag ([`DatasetSpec::by_short_tag`]).
    pub dataset: String,
    /// `scaled_down` factor applied to the dataset.
    pub scale: usize,
    /// Embedding tables in the tenant's model.
    pub num_tables: usize,
    /// Pre-formed 64-query batches in the trace.
    pub num_batches: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Dynamic batcher's maximum batch size.
    pub max_batch: usize,
    /// Oldest-query wait deadline, microseconds.
    pub max_wait_us: u64,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Overload policy when the admission queue is full.
    pub policy: OverloadPolicy,
    /// Table partitioning strategy for the tenant's engine.
    pub strategy: PartitionStrategy,
    /// EMT storage dtype for the tenant's engine.
    pub dtype: dlrm_model::EmbedDtype,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            name: String::new(),
            weight: 1.0,
            slo_p99_us: 0.0,
            qps: 200_000.0,
            arrival: ArrivalKind::Poisson,
            burst_factor: 4.0,
            burst_fraction: 0.2,
            seed: 7,
            dataset: "read".into(),
            scale: 5000,
            num_tables: 2,
            num_batches: 8,
            dim: 32,
            max_batch: 32,
            max_wait_us: 200,
            queue_cap: 256,
            policy: OverloadPolicy::ShedOldest,
            strategy: PartitionStrategy::NonUniform,
            dtype: dlrm_model::EmbedDtype::F32,
        }
    }
}

impl TenantSpec {
    /// The tenant's arrival process.
    pub fn arrival_process(&self) -> ArrivalProcess {
        match self.arrival {
            ArrivalKind::Poisson => ArrivalProcess::poisson(self.qps, self.seed),
            ArrivalKind::Bursty => ArrivalProcess::Bursty {
                qps: self.qps,
                burst_factor: self.burst_factor,
                burst_fraction: self.burst_fraction,
                seed: self.seed,
            },
        }
    }

    /// The tenant's batcher/admission configuration.
    pub fn sched_config(&self) -> SchedConfig {
        SchedConfig {
            max_batch_size: self.max_batch,
            max_wait_ns: self.max_wait_us.saturating_mul(1_000),
            queue_cap: self.queue_cap,
            policy: self.policy,
        }
    }

    /// The tenant's dataset spec, scaled.
    pub fn dataset_spec(&self) -> Result<DatasetSpec, String> {
        let spec = DatasetSpec::by_short_tag(&self.dataset).ok_or_else(|| {
            format!(
                "tenant '{}': unknown dataset '{}' (expected one of \
                 clo, home, meta1, meta2, read, read2, movie, twitch)",
                self.name, self.dataset
            )
        })?;
        Ok(if self.scale > 1 {
            spec.scaled_down(self.scale)
        } else {
            spec
        })
    }

    /// Checks the parameters for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let t = &self.name;
        if t.is_empty() {
            return Err("tenant name must be nonempty".into());
        }
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(format!("tenant '{t}': weight must be finite and > 0"));
        }
        if !(self.qps.is_finite() && self.qps > 0.0) {
            return Err(format!("tenant '{t}': qps must be finite and > 0"));
        }
        if self.slo_p99_us < 0.0 || !self.slo_p99_us.is_finite() {
            return Err(format!("tenant '{t}': slo_p99_us must be finite and >= 0"));
        }
        if self.arrival == ArrivalKind::Bursty {
            if self.burst_factor <= 1.0 {
                return Err(format!("tenant '{t}': burst_factor must be > 1"));
            }
            if !(self.burst_fraction > 0.0 && self.burst_factor * self.burst_fraction < 1.0) {
                return Err(format!(
                    "tenant '{t}': need 0 < burst_fraction and \
                     burst_factor x burst_fraction < 1 (quiet rate must stay positive)"
                ));
            }
        }
        if self.dim == 0 || self.num_tables == 0 || self.num_batches == 0 {
            return Err(format!(
                "tenant '{t}': dim, tables and batches must all be >= 1"
            ));
        }
        self.dataset_spec()?;
        self.sched_config()
            .validate()
            .map_err(|e| format!("tenant '{t}': {e}"))?;
        Ok(())
    }
}

/// A parsed tenants file: the shared fleet plus one spec per tenant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantsFile {
    /// Shared-fleet parameters (defaults when `[fleet]` is absent).
    pub fleet: FleetConfig,
    /// Tenant specs in file order.
    pub tenants: Vec<TenantSpec>,
}

/// Parses partitioning-strategy tags (the CLI's spellings).
pub fn parse_strategy(s: &str) -> Result<PartitionStrategy, String> {
    match s {
        "u" | "uniform" => Ok(PartitionStrategy::Uniform),
        "nu" | "non-uniform" => Ok(PartitionStrategy::NonUniform),
        "ca" | "cache-aware" => Ok(PartitionStrategy::CacheAware),
        "nur" | "replicated" => Ok(PartitionStrategy::Replicated),
        other => Err(format!(
            "unknown strategy '{other}' (expected u, nu, ca or nur)"
        )),
    }
}

/// Strips a `#` comment, honoring double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_f64(v: &str, ln: usize, key: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|_| format!("line {ln}: {key} expects a number, got '{v}'"))
}

fn parse_u64(v: &str, ln: usize, key: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("line {ln}: {key} expects a nonnegative integer, got '{v}'"))
}

fn parse_usize(v: &str, ln: usize, key: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("line {ln}: {key} expects a nonnegative integer, got '{v}'"))
}

fn parse_bool(v: &str, ln: usize, key: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("line {ln}: {key} expects true or false, got '{v}'")),
    }
}

fn parse_quoted(v: &str, ln: usize, key: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("line {ln}: {key} expects a quoted string, got {v}"))?;
    if inner.contains('"') {
        return Err(format!("line {ln}: {key} has an embedded quote"));
    }
    Ok(inner.to_string())
}

#[derive(PartialEq)]
enum Section {
    Top,
    Fleet,
    Tenant,
}

/// Parses a tenants TOML file (the subset described in the module
/// docs) and validates every spec.
///
/// # Errors
///
/// A message with the offending line number on syntax errors, unknown
/// sections/keys, and any [`TenantSpec::validate`] or
/// [`FleetConfig::validate`] failure.
pub fn parse_tenants_toml(text: &str) -> Result<TenantsFile, String> {
    let mut file = TenantsFile::default();
    let mut section = Section::Top;
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "[fleet]" => {
                section = Section::Fleet;
                continue;
            }
            "[[tenant]]" => {
                let t = TenantSpec {
                    name: format!("tenant{}", file.tenants.len()),
                    ..Default::default()
                };
                file.tenants.push(t);
                section = Section::Tenant;
                continue;
            }
            _ if line.starts_with('[') => {
                return Err(format!(
                    "line {ln}: unknown section {line} (expected [fleet] or [[tenant]])"
                ));
            }
            _ => {}
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("line {ln}: expected key = value, got '{line}'"))?;
        let (key, val) = (key.trim(), val.trim());
        match section {
            Section::Top => {
                return Err(format!(
                    "line {ln}: '{key}' outside any section (start with [fleet] or [[tenant]])"
                ));
            }
            Section::Fleet => match key {
                "dpus" => file.fleet.fleet_dpus = parse_usize(val, ln, key)?,
                "quantum_us" => {
                    file.fleet.quantum_ns = parse_u64(val, ln, key)?.saturating_mul(1_000)
                }
                "arbitration" => {
                    file.fleet.arbitration = parse_quoted(val, ln, key)?
                        .parse()
                        .map_err(|e| format!("line {ln}: {e}"))?
                }
                "interleave" => file.fleet.interleave = parse_bool(val, ln, key)?,
                "telemetry" => file.fleet.telemetry = parse_bool(val, ln, key)?,
                _ => return Err(format!("line {ln}: unknown [fleet] key '{key}'")),
            },
            Section::Tenant => {
                let t = file.tenants.last_mut().expect("tenant section is open");
                match key {
                    "name" => t.name = parse_quoted(val, ln, key)?,
                    "weight" => t.weight = parse_f64(val, ln, key)?,
                    "slo_p99_us" => t.slo_p99_us = parse_f64(val, ln, key)?,
                    "qps" => t.qps = parse_f64(val, ln, key)?,
                    "arrival" => {
                        t.arrival = parse_quoted(val, ln, key)?
                            .parse()
                            .map_err(|e| format!("line {ln}: {e}"))?
                    }
                    "burst_factor" => t.burst_factor = parse_f64(val, ln, key)?,
                    "burst_fraction" => t.burst_fraction = parse_f64(val, ln, key)?,
                    "seed" => t.seed = parse_u64(val, ln, key)?,
                    "dataset" => t.dataset = parse_quoted(val, ln, key)?,
                    "scale" => t.scale = parse_usize(val, ln, key)?,
                    "tables" => t.num_tables = parse_usize(val, ln, key)?,
                    "batches" => t.num_batches = parse_usize(val, ln, key)?,
                    "dim" => t.dim = parse_usize(val, ln, key)?,
                    "max_batch" => t.max_batch = parse_usize(val, ln, key)?,
                    "max_wait_us" => t.max_wait_us = parse_u64(val, ln, key)?,
                    "queue_cap" => t.queue_cap = parse_usize(val, ln, key)?,
                    "policy" => {
                        t.policy = parse_quoted(val, ln, key)?
                            .parse()
                            .map_err(|e| format!("line {ln}: {e}"))?
                    }
                    "strategy" => {
                        t.strategy = parse_strategy(&parse_quoted(val, ln, key)?)
                            .map_err(|e| format!("line {ln}: {e}"))?
                    }
                    "dtype" => {
                        t.dtype = dlrm_model::EmbedDtype::parse(&parse_quoted(val, ln, key)?)
                            .map_err(|e| format!("line {ln}: {e}"))?
                    }
                    _ => return Err(format!("line {ln}: unknown [[tenant]] key '{key}'")),
                }
            }
        }
    }
    if file.tenants.is_empty() {
        return Err("tenants file declares no [[tenant]] sections".into());
    }
    file.fleet.validate()?;
    for t in &file.tenants {
        t.validate()?;
    }
    for (i, a) in file.tenants.iter().enumerate() {
        for b in &file.tenants[i + 1..] {
            if a.name == b.name {
                return Err(format!("duplicate tenant name '{}'", a.name));
            }
        }
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# two tenants sharing a 32-DPU fleet
[fleet]
dpus = 32
quantum_us = 150          # per-visit credit at weight 1.0
arbitration = "drr"
interleave = true

[[tenant]]
name = "search"           # steady victim
qps = 250000.0
weight = 2.0
slo_p99_us = 900.0
dataset = "read"
strategy = "ca"
dtype = "int8"

[[tenant]]
name = "ads"
qps = 150000.0
arrival = "bursty"
burst_factor = 5.0
burst_fraction = 0.15
policy = "reject-new"
seed = 42
"#;

    #[test]
    fn parses_the_documented_example() {
        let f = parse_tenants_toml(EXAMPLE).unwrap();
        assert_eq!(f.fleet.fleet_dpus, 32);
        assert_eq!(f.fleet.quantum_ns, 150_000);
        assert_eq!(f.fleet.arbitration, Arbitration::Drr);
        assert!(f.fleet.interleave && f.fleet.telemetry);
        assert_eq!(f.tenants.len(), 2);
        let (s, a) = (&f.tenants[0], &f.tenants[1]);
        assert_eq!(s.name, "search");
        assert_eq!(s.weight, 2.0);
        assert_eq!(s.slo_p99_us, 900.0);
        assert_eq!(s.strategy, PartitionStrategy::CacheAware);
        assert_eq!(s.dtype, dlrm_model::EmbedDtype::Int8);
        assert_eq!(s.arrival, ArrivalKind::Poisson);
        assert_eq!(a.name, "ads");
        assert_eq!(a.arrival, ArrivalKind::Bursty);
        assert_eq!(a.burst_factor, 5.0);
        assert_eq!(a.policy, OverloadPolicy::RejectNew);
        assert_eq!(a.seed, 42);
        // Defaults fill everything unspecified.
        assert_eq!(a.max_batch, 32);
        assert_eq!(a.dim, 32);
    }

    #[test]
    fn default_names_and_fleet_apply_when_sections_are_minimal() {
        let f = parse_tenants_toml("[[tenant]]\nqps = 1000.0\n").unwrap();
        assert_eq!(f.tenants[0].name, "tenant0");
        assert_eq!(f.fleet, FleetConfig::default());
    }

    #[test]
    fn rejects_malformed_files_with_line_numbers() {
        for (text, needle) in [
            ("qps = 1.0\n", "outside any section"),
            ("[[tenant]]\nbogus = 1\n", "unknown [[tenant]] key 'bogus'"),
            ("[fleet]\nbogus = 1\n", "unknown [fleet] key 'bogus'"),
            ("[cluster]\n", "unknown section"),
            ("[[tenant]]\nname = unquoted\n", "quoted string"),
            ("[[tenant]]\nqps = \"fast\"\n", "expects a number"),
            ("[[tenant]]\ndataset = \"criteo\"\n", "unknown dataset"),
            ("[[tenant]]\nqps = -5.0\n", "qps must be"),
            ("", "no [[tenant]] sections"),
            (
                "[[tenant]]\nname = \"a\"\n[[tenant]]\nname = \"a\"\n",
                "duplicate tenant name",
            ),
            (
                "[[tenant]]\narrival = \"bursty\"\nburst_factor = 0.5\n",
                "burst_factor must be > 1",
            ),
            ("[fleet]\ndpus = 0\n[[tenant]]\n", "dpus must be >= 1"),
        ] {
            let err = parse_tenants_toml(text).unwrap_err();
            assert!(err.contains(needle), "for {text:?}: got '{err}'");
        }
        // Error lines point at the offending line.
        let err = parse_tenants_toml("[fleet]\ndpus = 8\nbogus = 1\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn comments_respect_quotes_and_strategy_tags_round_trip() {
        let f = parse_tenants_toml("[[tenant]]\nname = \"a#b\" # trailing\n").unwrap();
        assert_eq!(f.tenants[0].name, "a#b");
        for (tag, want) in [
            ("u", PartitionStrategy::Uniform),
            ("nu", PartitionStrategy::NonUniform),
            ("ca", PartitionStrategy::CacheAware),
            ("nur", PartitionStrategy::Replicated),
        ] {
            assert_eq!(parse_strategy(tag).unwrap(), want);
        }
        assert!(parse_strategy("zigzag").is_err());
    }
}
