//! The multi-tenant fleet: N per-tenant engines, one shared modeled
//! DPU fleet, deterministic arbitration between them.
//!
//! ## Two-phase design
//!
//! Serving runs in two strictly separated phases per
//! [`TenantFleet::run`]:
//!
//! 1. **Formation + execution** (per tenant, in isolation): each
//!    tenant's arrival trace is replayed through its own
//!    [`BatchPolicy`] admission queue exactly as the single-tenant
//!    `scheduler::Scheduler` would — same admission order, same
//!    overload policy, same size/deadline/drain triggers, paced by a
//!    *virtual dedicated-fleet clock* (the instant the tenant's own
//!    engine would free up if it had the whole fleet to itself). Every
//!    formed batch runs through the tenant's engine here, producing
//!    pooled embeddings and a modeled service time.
//! 2. **Arbitration** (across tenants): the formed batches — each a
//!    `(ready_ns, service_ns)` pair — are dispatched onto the shared
//!    single-server fleet timeline under weighted deficit round robin
//!    or FCFS. Completion times (and hence per-request latencies and
//!    SLO verdicts) come from this shared timeline.
//!
//! Because phase 1 never sees the other tenants, a tenant's batch
//! content and pooled embeddings are a pure function of its own spec —
//! *bit-identical* to the same tenant served alone on its own fleet
//! slice, and bit-identical to `scheduler::Scheduler` driving the same
//! engine (the differential tests enforce both). Arbitration can only
//! move completion times, which is exactly the degree of freedom the
//! noisy-neighbor isolation gates measure.
//!
//! ## WDRR accounting
//!
//! Tenant `i` holds a deficit counter. Each round-robin visit while it
//! has a ready batch credits `quantum_ns x weight_i`; the fleet then
//! serves its ready batches while the deficit covers their service
//! time, debiting as it goes. A tenant with no ready batch at the end
//! of its visit forfeits its deficit (no banking credit while idle —
//! a bursty tenant cannot save up fleet time during its quiet phase).
//! With every queue backlogged, long-run fleet shares converge to
//! `weight_i / sum(weights)`; a victim's extra wait behind an
//! adversary is bounded by the in-flight batch plus one adversary
//! quantum, independent of the adversary's backlog depth.
//!
//! All arbitration arithmetic is integer-ns; a fixed seed produces
//! byte-identical [`FleetReport`]s and telemetry snapshots.

use crate::spec::{Arbitration, FleetConfig, TenantSpec};
use dlrm_model::{EmbeddingTable, Matrix, QueryBatch};
use placement::interleaved_offsets;
use scheduler::{assemble_into, service_ns_to_u64, AdmitOutcome, BatchPolicy, SchedReport};
use updlrm_core::engine::EmbeddingBreakdown;
use updlrm_core::telemetry::Snapshot;
use updlrm_core::{
    percentile, BatchServer, CoreError, MetricsRegistry, Result, SchedTrigger, TenantSnapshot,
    UpdlrmConfig, UpdlrmEngine,
};
use workloads::{TraceConfig, Workload, NS_PER_SEC};

/// One formed batch awaiting fleet dispatch: its phase-1 launch
/// instant, integer-ns service time and member range into the lane's
/// flat member-id buffer.
#[derive(Debug, Clone, Copy)]
struct FormedBatch {
    ready_ns: u64,
    service_ns: u64,
    members: (u32, u32),
}

/// Per-tenant serving state: spec, workload, engine, admission queue
/// and all steady-state scratch (preallocated per run; the event loops
/// do not allocate).
#[derive(Debug)]
struct Lane<E> {
    spec: TenantSpec,
    workload: Workload,
    engine: E,
    policy: BatchPolicy,
    dpu_offset: usize,
    formed_ids: Vec<u32>,
    batch: QueryBatch,
    batches: Vec<FormedBatch>,
    members: Vec<u32>,
    latencies: Vec<u64>,
    lat_stats: Vec<f64>,
    report: SchedReport,
    last_completion_ns: u64,
    busy_ns: u64,
}

fn blank_report(requests: u64, offered_qps: f64) -> SchedReport {
    SchedReport {
        requests,
        admitted: 0,
        completed: 0,
        shed: 0,
        rejected: 0,
        blocked: 0,
        batches: 0,
        trigger_size: 0,
        trigger_deadline: 0,
        trigger_drain: 0,
        queue_high_water: 0,
        mean_batch_size: 0.0,
        offered_qps,
        achieved_qps: 0.0,
        makespan_ns: 0.0,
        mean_latency_ns: 0.0,
        p50_latency_ns: 0.0,
        p95_latency_ns: 0.0,
        p99_latency_ns: 0.0,
        max_latency_ns: 0.0,
    }
}

impl<E: BatchServer> Lane<E> {
    /// Phase 1: replay this tenant's arrival trace through its
    /// admission queue and engine, recording each formed batch's
    /// launch instant and service time. Mirrors
    /// `scheduler::Scheduler::run` exactly (the differential test
    /// holds them equal), with the engine-busy floor supplied by the
    /// tenant's own virtual clock.
    fn form_and_serve<F>(&mut self, tenant: usize, sink: &mut F) -> Result<()>
    where
        F: FnMut(usize, usize, &[u32], &[Matrix], &EmbeddingBreakdown),
    {
        let n = self.workload.arrivals.times_ns.len();
        if n == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "tenant '{}' has no arrival trace (closed-loop)",
                self.spec.name
            )));
        }
        let cfg = *self.policy.config();
        if cfg.max_batch_size > self.engine.staged_batch_capacity() {
            return Err(CoreError::InvalidConfig(format!(
                "tenant '{}': max_batch {} exceeds the engine's staged capacity {}",
                self.spec.name,
                cfg.max_batch_size,
                self.engine.staged_batch_capacity()
            )));
        }
        if self.batch.sparse.len() != self.workload.config.num_tables {
            self.batch.sparse = vec![Default::default(); self.workload.config.num_tables];
        }
        self.policy.clear();
        self.batches.clear();
        self.batches.reserve(n);
        self.members.clear();
        self.members.reserve(n);
        self.latencies.clear();
        self.latencies.reserve(n);
        self.lat_stats.clear();
        self.lat_stats.reserve(n);
        self.report = blank_report(n as u64, self.workload.arrivals.measured_offered_qps());
        self.last_completion_ns = 0;
        self.busy_ns = 0;

        let mut next = 0usize;
        let mut now = 0u64;
        let mut virt_free = 0u64; // the tenant's dedicated-fleet clock
        let mut seq = 0usize;
        let mut door_blocked = false;
        let mut blocked_counted = 0usize;

        loop {
            if self.policy.is_empty() {
                if next >= n {
                    break;
                }
                now = now.max(self.arrival(next));
                door_blocked = false;
                self.admit(&mut next, &mut door_blocked);
                continue;
            }
            let plan = self
                .policy
                .launch_at(now, virt_free, next >= n)
                .expect("queue is nonempty");
            if !door_blocked && next < n && self.arrival(next) <= plan.at_ns {
                now = now.max(self.arrival(next));
                self.admit(&mut next, &mut door_blocked);
                if door_blocked && next >= blocked_counted {
                    self.report.blocked += 1;
                    blocked_counted = next + 1;
                    self.engine.metrics_mut().record_sched_block();
                }
                continue;
            }
            now = plan.at_ns;
            self.engine.on_tick(now)?;
            let newest = self
                .policy
                .take_batch(&mut self.formed_ids)
                .expect("queue is nonempty");
            let k = self.formed_ids.len();
            if newest > now {
                return Err(CoreError::Invariant(format!(
                    "tenant '{}': batch {seq} launches at {now} ns but contains an \
                     arrival admitted at {newest} ns",
                    self.spec.name
                )));
            }
            let Lane {
                batch,
                formed_ids,
                workload,
                engine,
                ..
            } = &mut *self;
            assemble_into(workload, formed_ids, batch);
            let mut service = 0.0f64;
            engine.serve_stream(std::slice::from_ref(&*batch), |_, pooled, bd| {
                service = bd.total_ns();
                sink(tenant, seq, formed_ids, pooled, bd);
            })?;
            let service_ns = service_ns_to_u64(service);
            virt_free = now.saturating_add(service_ns);
            let start = self.members.len() as u32;
            self.members.extend_from_slice(&self.formed_ids);
            self.batches.push(FormedBatch {
                ready_ns: now,
                service_ns,
                members: (start, self.members.len() as u32),
            });
            self.report.batches += 1;
            match plan.trigger {
                SchedTrigger::Size => self.report.trigger_size += 1,
                SchedTrigger::Deadline => self.report.trigger_deadline += 1,
                SchedTrigger::Drain => self.report.trigger_drain += 1,
            }
            self.engine
                .metrics_mut()
                .record_sched_batch(k, plan.trigger);
            self.report.completed += k as u64;
            seq += 1;
            door_blocked = false;
        }
        Ok(())
    }

    fn arrival(&self, i: usize) -> u64 {
        self.workload.arrivals.times_ns[i]
    }

    /// Admission step, identical to the scheduler's.
    fn admit(&mut self, next: &mut usize, door_blocked: &mut bool) {
        let at = self.arrival(*next);
        let metrics = self.engine.metrics_mut();
        match self.policy.admit(*next as u32, at) {
            AdmitOutcome::Admitted { depth } => {
                self.report.admitted += 1;
                self.report.queue_high_water = self.report.queue_high_water.max(depth as u64);
                metrics.record_sched_admit(depth);
                *next += 1;
            }
            AdmitOutcome::AdmittedAfterShed { depth, .. } => {
                self.report.shed += 1;
                metrics.record_sched_shed();
                self.report.admitted += 1;
                self.report.queue_high_water = self.report.queue_high_water.max(depth as u64);
                metrics.record_sched_admit(depth);
                *next += 1;
            }
            AdmitOutcome::Rejected => {
                self.report.rejected += 1;
                metrics.record_sched_reject();
                *next += 1;
            }
            AdmitOutcome::Blocked => {
                *door_blocked = true;
            }
        }
    }

    /// Phase 3: derived statistics from the shared-timeline latencies.
    fn finalize(&mut self) {
        self.latencies.sort_unstable();
        self.lat_stats
            .extend(self.latencies.iter().map(|&l| l as f64));
        let r = &mut self.report;
        r.makespan_ns = self.last_completion_ns as f64;
        r.achieved_qps = if self.last_completion_ns > 0 {
            r.completed as f64 * NS_PER_SEC / self.last_completion_ns as f64
        } else {
            0.0
        };
        r.mean_batch_size = if r.batches > 0 {
            r.completed as f64 / r.batches as f64
        } else {
            0.0
        };
        if let Some(&max) = self.latencies.last() {
            r.max_latency_ns = max as f64;
            r.mean_latency_ns = self.latencies.iter().map(|&l| l as u128).sum::<u128>() as f64
                / self.latencies.len() as f64;
        }
        r.p50_latency_ns = percentile(&self.lat_stats, 0.50);
        r.p95_latency_ns = percentile(&self.lat_stats, 0.95);
        r.p99_latency_ns = percentile(&self.lat_stats, 0.99);
    }

    fn slo_ns(&self) -> u64 {
        (self.spec.slo_p99_us * 1_000.0).round() as u64
    }
}

/// Per-tenant block of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Arbitration weight.
    pub weight: f64,
    /// p99 SLO in ns (`0` = no SLO).
    pub slo_p99_ns: f64,
    /// Completed requests whose shared-timeline latency exceeded the
    /// SLO (always 0 without an SLO).
    pub slo_violations: u64,
    /// `weight / sum(weights)`.
    pub fleet_share_configured: f64,
    /// This tenant's fraction of total fleet busy time.
    pub fleet_share_achieved: f64,
    /// DPU origin rotation applied to this tenant's partitions.
    pub dpu_offset: usize,
    /// Admission/batching counters and shared-timeline latency stats
    /// (same schema as the single-tenant scheduler report).
    pub sched: SchedReport,
}

/// Aggregate result of one [`TenantFleet::run`]. Fixed seeds and specs
/// produce byte-identical serializations.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// DPUs in the shared fleet.
    pub fleet_dpus: usize,
    /// Arbitration discipline (`"drr"` or `"fcfs"`).
    pub arbitration: String,
    /// Base DRR quantum, ns.
    pub quantum_ns: u64,
    /// Modeled instant the last batch drained, ns.
    pub makespan_ns: f64,
    /// Total fleet busy time across tenants, ns.
    pub total_busy_ns: f64,
    /// `total_busy / makespan` — shared-fleet duty cycle.
    pub fleet_utilization: f64,
    /// Max/mean of per-DPU aggregate kernel cycles across all tenants
    /// with their interleave rotations applied (`0` without telemetry).
    pub fleet_imbalance: f64,
    /// Per-tenant blocks, in spec order.
    pub tenants: Vec<TenantReport>,
}

/// True when every derived f64 statistic in `report` is finite (the
/// `--json` serialization contract).
pub fn fleet_report_is_finite(report: &FleetReport) -> bool {
    [
        report.makespan_ns,
        report.total_busy_ns,
        report.fleet_utilization,
        report.fleet_imbalance,
    ]
    .iter()
    .all(|v| v.is_finite())
        && report.tenants.iter().all(|t| {
            scheduler::report_is_finite(&t.sched)
                && t.fleet_share_configured.is_finite()
                && t.fleet_share_achieved.is_finite()
                && t.slo_p99_ns.is_finite()
        })
}

/// N tenants sharing one modeled DPU fleet. See the module docs for
/// the two-phase serving design.
#[derive(Debug)]
pub struct TenantFleet<E: BatchServer = UpdlrmEngine> {
    cfg: FleetConfig,
    lanes: Vec<Lane<E>>,
    metrics: MetricsRegistry,
}

impl TenantFleet<UpdlrmEngine> {
    /// Builds a fleet of [`UpdlrmEngine`]s, one per spec: each
    /// tenant's catalog is generated from its dataset/seed (integer-
    /// valued rows, so pooled sums are order-exact), its tables
    /// partitioned across all `fleet_dpus` under its own strategy and
    /// dtype.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on an invalid spec or fleet
    /// config; engine construction errors propagate.
    pub fn from_specs(specs: &[TenantSpec], cfg: FleetConfig) -> Result<Self> {
        let mut parts = Vec::with_capacity(specs.len());
        for spec in specs {
            let dspec = spec.dataset_spec().map_err(CoreError::InvalidConfig)?;
            let mut workload = Workload::generate(
                &dspec,
                TraceConfig {
                    num_tables: spec.num_tables,
                    num_batches: spec.num_batches,
                    seed: spec.seed,
                    ..TraceConfig::default()
                },
            );
            workload.stamp_arrivals(spec.arrival_process());
            let tables: Vec<EmbeddingTable> = (0..spec.num_tables)
                .map(|t| {
                    EmbeddingTable::random_integer_valued(
                        dspec.num_items,
                        spec.dim,
                        3,
                        spec.seed.wrapping_add(t as u64),
                    )
                    .map_err(|e| CoreError::InvalidConfig(format!("tenant '{}': {e}", spec.name)))
                })
                .collect::<Result<_>>()?;
            let config = UpdlrmConfig {
                batch_size: spec.max_batch,
                telemetry: cfg.telemetry,
                embed_dtype: spec.dtype,
                ..UpdlrmConfig::with_dpus(cfg.fleet_dpus, spec.strategy)
            };
            let engine = UpdlrmEngine::from_workload(config, &tables, &workload)?;
            parts.push((spec.clone(), workload, engine));
        }
        Self::with_engines(cfg, parts)
    }
}

impl<E: BatchServer> TenantFleet<E> {
    /// Builds a fleet from pre-constructed engines (one per tenant) —
    /// the escape hatch for tiered or otherwise custom back-ends. Each
    /// workload must carry an open-loop arrival trace.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on empty tenant lists, invalid
    /// specs or an invalid fleet config.
    pub fn with_engines(cfg: FleetConfig, parts: Vec<(TenantSpec, Workload, E)>) -> Result<Self> {
        cfg.validate().map_err(CoreError::InvalidConfig)?;
        if parts.is_empty() {
            return Err(CoreError::InvalidConfig(
                "a tenant fleet needs at least one tenant".into(),
            ));
        }
        for (spec, _, _) in &parts {
            spec.validate().map_err(CoreError::InvalidConfig)?;
        }
        let offsets = if cfg.interleave {
            interleaved_offsets(parts.len(), cfg.fleet_dpus)
        } else {
            vec![0; parts.len()]
        };
        let metrics = MetricsRegistry::new(cfg.telemetry, cfg.fleet_dpus);
        let lanes = parts
            .into_iter()
            .zip(offsets)
            .map(|((spec, workload, engine), dpu_offset)| {
                let policy = BatchPolicy::new(spec.sched_config())?;
                let requests = workload.arrivals.times_ns.len() as u64;
                let offered = workload.arrivals.measured_offered_qps();
                Ok(Lane {
                    formed_ids: Vec::with_capacity(spec.sched_config().max_batch_size),
                    spec,
                    workload,
                    engine,
                    policy,
                    dpu_offset,
                    batch: QueryBatch::default(),
                    batches: Vec::new(),
                    members: Vec::new(),
                    latencies: Vec::new(),
                    lat_stats: Vec::new(),
                    report: blank_report(requests, offered),
                    last_completion_ns: 0,
                    busy_ns: 0,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(TenantFleet {
            cfg,
            lanes,
            metrics,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Tenant names, in spec order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.lanes.iter().map(|l| l.spec.name.as_str()).collect()
    }

    /// The fleet-level telemetry snapshot of the last [`run`](Self::run)
    /// (schema v5: per-tenant breakouts live in `tenants`).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Borrow a tenant's engine (for per-tenant telemetry).
    pub fn engine_mut(&mut self, tenant: usize) -> &mut E {
        &mut self.lanes[tenant].engine
    }

    /// Serves every tenant's trace over the shared fleet.
    /// `sink(tenant, batch_seq, query_ids, pooled, breakdown)` fires
    /// once per formed batch, per tenant, in each tenant's launch
    /// order (tenants are served phase-1 in spec order).
    ///
    /// # Errors
    ///
    /// Spec/engine validation and engine serving errors propagate.
    pub fn run<F>(&mut self, mut sink: F) -> Result<FleetReport>
    where
        F: FnMut(usize, usize, &[u32], &[Matrix], &EmbeddingBreakdown),
    {
        self.metrics.reset();
        for (tenant, lane) in self.lanes.iter_mut().enumerate() {
            lane.form_and_serve(tenant, &mut sink)?;
        }
        self.arbitrate();
        for lane in &mut self.lanes {
            lane.finalize();
        }
        Ok(self.build_report())
    }

    /// Phase 2: dispatch every formed batch onto the shared
    /// single-server fleet timeline. Integer-ns throughout.
    fn arbitrate(&mut self) {
        let nt = self.lanes.len();
        let total: usize = self.lanes.iter().map(|l| l.batches.len()).sum();
        let quantum: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| ((self.cfg.quantum_ns as f64 * l.spec.weight).round() as u64).max(1))
            .collect();
        let mut head = vec![0usize; nt];
        let mut deficit = vec![0u64; nt];
        let mut now = 0u64;
        let mut rr = 0usize;
        let mut done = 0usize;
        while done < total {
            match self.cfg.arbitration {
                Arbitration::Fcfs => {
                    // Earliest-ready batch next; ties go to the lowest
                    // tenant index (strict < keeps the first winner).
                    let mut best: Option<(u64, usize)> = None;
                    for (i, lane) in self.lanes.iter().enumerate() {
                        if let Some(b) = lane.batches.get(head[i]) {
                            if best.is_none_or(|(r, _)| b.ready_ns < r) {
                                best = Some((b.ready_ns, i));
                            }
                        }
                    }
                    let (_, i) = best.expect("done < total implies a pending batch");
                    now = Self::dispatch(&mut self.lanes[i], &mut head[i], now);
                    done += 1;
                }
                Arbitration::Drr => {
                    let mut any_ready = false;
                    let mut min_ready = u64::MAX;
                    for (i, lane) in self.lanes.iter().enumerate() {
                        if let Some(b) = lane.batches.get(head[i]) {
                            min_ready = min_ready.min(b.ready_ns);
                            any_ready |= b.ready_ns <= now;
                        }
                    }
                    if !any_ready {
                        // Idle fleet: jump to the next ready instant.
                        now = now.max(min_ready);
                        continue;
                    }
                    for k in 0..nt {
                        let i = (rr + k) % nt;
                        let lane = &mut self.lanes[i];
                        match lane.batches.get(head[i]) {
                            Some(b) if b.ready_ns <= now => {}
                            _ => continue,
                        }
                        deficit[i] = deficit[i].saturating_add(quantum[i]);
                        while let Some(b) = lane.batches.get(head[i]) {
                            if b.ready_ns > now || deficit[i] < b.service_ns {
                                break;
                            }
                            deficit[i] -= b.service_ns;
                            now = Self::dispatch(lane, &mut head[i], now);
                            done += 1;
                        }
                        // No banking while idle: forfeit leftover credit
                        // unless a ready batch is still waiting on it.
                        let still_ready =
                            lane.batches.get(head[i]).is_some_and(|b| b.ready_ns <= now);
                        if !still_ready {
                            deficit[i] = 0;
                        }
                        rr = (i + 1) % nt;
                        break;
                    }
                }
            }
        }
        for lane in &mut self.lanes {
            debug_assert_eq!(lane.latencies.len(), lane.report.completed as usize);
        }
    }

    /// Serves one batch on the shared timeline; returns the new fleet
    /// clock. Latency = shared completion − original arrival.
    fn dispatch(lane: &mut Lane<E>, head: &mut usize, now: u64) -> u64 {
        let b = lane.batches[*head];
        let start = now.max(b.ready_ns);
        let completion = start.saturating_add(b.service_ns);
        let times = &lane.workload.arrivals.times_ns;
        for &id in &lane.members[b.members.0 as usize..b.members.1 as usize] {
            lane.latencies.push(completion - times[id as usize]);
        }
        lane.busy_ns += b.service_ns;
        lane.last_completion_ns = completion;
        *head += 1;
        completion
    }

    /// Folds the lanes into a [`FleetReport`] and records the
    /// per-tenant telemetry breakout (schema v5).
    fn build_report(&mut self) -> FleetReport {
        let total_w: f64 = self.lanes.iter().map(|l| l.spec.weight).sum();
        let total_busy: u64 = self.lanes.iter().map(|l| l.busy_ns).sum();
        let makespan = self
            .lanes
            .iter()
            .map(|l| l.last_completion_ns)
            .max()
            .unwrap_or(0);
        let mut agg = vec![0u64; self.cfg.fleet_dpus];
        let mut tenants = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let slo_ns = lane.slo_ns();
            let violations = if slo_ns > 0 {
                lane.latencies.iter().filter(|&&l| l > slo_ns).count() as u64
            } else {
                0
            };
            let share_conf = lane.spec.weight / total_w;
            let share_ach = if total_busy > 0 {
                lane.busy_ns as f64 / total_busy as f64
            } else {
                0.0
            };
            for d in lane.engine.metrics_mut().snapshot().per_dpu {
                agg[(d.dpu as usize + lane.dpu_offset) % self.cfg.fleet_dpus] += d.cycles;
            }
            // Fold the lane engine's stage/traffic/scheduler counters
            // into the fleet registry, rotated to fleet DPU ids, so
            // `--metrics` writes one fleet-wide snapshot next to the
            // per-tenant breakout below.
            self.metrics
                .absorb(lane.engine.metrics_mut(), lane.dpu_offset);
            let r = &lane.report;
            self.metrics.record_tenant(TenantSnapshot {
                name: lane.spec.name.clone(),
                weight: lane.spec.weight,
                admitted: r.admitted,
                shed: r.shed,
                rejected: r.rejected,
                blocked: r.blocked,
                completed: r.completed,
                batches: r.batches,
                slo_p99_ns: slo_ns as f64,
                slo_violations: violations,
                mean_latency_ns: r.mean_latency_ns,
                p50_latency_ns: r.p50_latency_ns,
                p95_latency_ns: r.p95_latency_ns,
                p99_latency_ns: r.p99_latency_ns,
                fleet_share_configured: share_conf,
                fleet_share_achieved: share_ach,
            });
            tenants.push(TenantReport {
                name: lane.spec.name.clone(),
                weight: lane.spec.weight,
                slo_p99_ns: slo_ns as f64,
                slo_violations: violations,
                fleet_share_configured: share_conf,
                fleet_share_achieved: share_ach,
                dpu_offset: lane.dpu_offset,
                sched: lane.report,
            });
        }
        let mean = agg.iter().map(|&c| c as f64).sum::<f64>() / agg.len() as f64;
        let imbalance = if mean > 0.0 {
            agg.iter().map(|&c| c as f64).fold(0.0, f64::max) / mean
        } else {
            0.0
        };
        FleetReport {
            fleet_dpus: self.cfg.fleet_dpus,
            arbitration: self.cfg.arbitration.as_str().to_string(),
            quantum_ns: self.cfg.quantum_ns,
            makespan_ns: makespan as f64,
            total_busy_ns: total_busy as f64,
            fleet_utilization: if makespan > 0 {
                total_busy as f64 / makespan as f64
            } else {
                0.0
            },
            fleet_imbalance: imbalance,
            tenants,
        }
    }
}

/// One fleet size evaluated by [`capacity_sweep`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacityPoint {
    /// Fleet size evaluated.
    pub fleet_dpus: usize,
    /// The engines could be built at all at this size (tiny fleets can
    /// have no feasible tile shape for a tenant's tables; such points
    /// report `false` here with empty `tenants` instead of aborting
    /// the sweep).
    pub feasible: bool,
    /// All tenants met their SLOs (and dropped nothing) at this size.
    pub all_slos_met: bool,
    /// Per-tenant verdicts (empty when infeasible).
    pub tenants: Vec<TenantCapacity>,
}

/// Per-tenant verdict at one swept fleet size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantCapacity {
    /// Tenant name.
    pub name: String,
    /// Shared-timeline p99 at this fleet size, ns.
    pub p99_latency_ns: f64,
    /// The tenant's SLO, ns (`0` = none).
    pub slo_p99_ns: f64,
    /// Requests completed / offered.
    pub completed: u64,
    /// Offered requests.
    pub requests: u64,
    /// Requests shed or rejected under overload.
    pub dropped: u64,
    /// SLO met: p99 within bound and nothing dropped. Vacuously true
    /// without an SLO — a no-SLO tenant is allowed to shed under its
    /// own overload policy without failing the point.
    pub met: bool,
}

/// Answers "how many DPUs do these tenants need at these SLOs?" by
/// running the full two-phase fleet at each candidate size — engines
/// are rebuilt per size, so the existing tiling/partitioning cost
/// model prices every point. Candidates are evaluated in the order
/// given; the report for each carries per-tenant p99s and verdicts.
///
/// # Errors
///
/// Serving errors propagate; a *construction* failure at one size
/// (e.g. no feasible tiling on a tiny fleet) only marks that point
/// infeasible.
pub fn capacity_sweep(
    specs: &[TenantSpec],
    base: &FleetConfig,
    candidates: &[usize],
) -> Result<Vec<CapacityPoint>> {
    let mut points = Vec::with_capacity(candidates.len());
    for &fleet_dpus in candidates {
        let cfg = FleetConfig {
            fleet_dpus,
            ..base.clone()
        };
        let mut fleet = match TenantFleet::from_specs(specs, cfg) {
            Ok(fleet) => fleet,
            Err(CoreError::InvalidConfig(msg)) => return Err(CoreError::InvalidConfig(msg)),
            Err(_) => {
                points.push(CapacityPoint {
                    fleet_dpus,
                    feasible: false,
                    all_slos_met: false,
                    tenants: Vec::new(),
                });
                continue;
            }
        };
        let report = fleet.run(|_, _, _, _, _| {})?;
        let tenants: Vec<TenantCapacity> = report
            .tenants
            .iter()
            .map(|t| {
                let dropped = t.sched.shed + t.sched.rejected;
                let met =
                    t.slo_p99_ns == 0.0 || (dropped == 0 && t.sched.p99_latency_ns <= t.slo_p99_ns);
                TenantCapacity {
                    name: t.name.clone(),
                    p99_latency_ns: t.sched.p99_latency_ns,
                    slo_p99_ns: t.slo_p99_ns,
                    completed: t.sched.completed,
                    requests: t.sched.requests,
                    dropped,
                    met,
                }
            })
            .collect();
        points.push(CapacityPoint {
            fleet_dpus,
            feasible: true,
            all_slos_met: tenants.iter().all(|t| t.met),
            tenants,
        });
    }
    Ok(points)
}
