//! # tenancy — multi-tenant serving over one shared modeled DPU fleet
//!
//! Every crate below this one serves a single workload: one catalog,
//! one strategy, one engine, one queue. Real PIM deployments
//! consolidate — several recommendation models share the DIMMs —
//! so this crate adds the missing layer: N independent
//! [`UpdlrmEngine`](updlrm_core::UpdlrmEngine)/
//! [`TieredEngine`](updlrm_core::TieredEngine) instances (one per
//! tenant, each with its own catalog, partitioning strategy and
//! embedding dtype) time-sharing one modeled fleet under a weighted
//! deficit-round-robin arbiter, with per-tenant admission queues,
//! deadlines, queue caps and overload policies ([`TenantSpec`]).
//!
//! The headline contracts (see [`fleet`] for the mechanism):
//!
//! * **Content isolation is exact.** A tenant's batch formation and
//!   pooled embeddings are bit-identical to the same tenant served
//!   alone — sharing the fleet can delay a tenant's answers, never
//!   change them.
//! * **Determinism.** Fixed seeds and specs give byte-identical
//!   [`FleetReport`]s and telemetry snapshots (schema v5 adds the
//!   per-tenant [`TenantSnapshot`](updlrm_core::TenantSnapshot)
//!   breakout) across runs and machines.
//! * **Performance isolation is the arbiter's job.** Under
//!   [`Arbitration::Drr`], a bursty adversary's backlog cannot push a
//!   steady victim's p99 arbitrarily; under [`Arbitration::Fcfs`] it
//!   can — `benches/tenants.rs` gates both directions.
//!
//! Tenants are declared in a small TOML file ([`parse_tenants_toml`]);
//! `updlrm serve --tenants FILE.toml` runs the mixed workload and
//! `updlrm capacity --tenants FILE.toml` sweeps fleet sizes
//! ([`capacity_sweep`]) to answer "how many DPUs do these tenants
//! need at these SLOs?".

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fleet;
pub mod spec;

pub use fleet::{
    capacity_sweep, fleet_report_is_finite, CapacityPoint, FleetReport, TenantCapacity,
    TenantFleet, TenantReport,
};
pub use spec::{
    parse_strategy, parse_tenants_toml, Arbitration, ArrivalKind, FleetConfig, TenantSpec,
    TenantsFile,
};
