//! Shape tests: assert the *qualitative* claims of every paper figure
//! at quick scale, using the same experiment code the binaries run.
//! (Absolute numbers are simulator outputs; see EXPERIMENTS.md.)

use bench::experiments;
use bench::setup::{EvalConfig, EvalSetup};
use updlrm_core::PartitionStrategy;
use workloads::DatasetSpec;

fn quick() -> EvalConfig {
    EvalConfig::quick()
}

#[test]
fn fig3_shape_flat_then_steep() {
    let rows = experiments::fig3();
    let by_size = |s: usize| {
        rows.iter()
            .find(|r| r.size_bytes == s)
            .expect("size")
            .latency_ns
    };
    // Paper: 8 -> 32 B nearly flat, then dramatic growth.
    assert!(by_size(32) / by_size(8) < 1.25);
    assert!(by_size(2048) / by_size(32) > 5.0);
    // Monotone.
    for w in rows.windows(2) {
        assert!(w[1].latency_ns >= w[0].latency_ns);
    }
}

#[test]
fn table1_matches_spec() {
    let rows = experiments::table1(quick());
    assert_eq!(rows.len(), 6);
    for r in &rows {
        let err = (r.measured_avg_reduction - r.spec_avg_reduction).abs();
        assert!(
            err < r.spec_avg_reduction * 0.2,
            "{}: measured {} vs spec {}",
            r.short,
            r.measured_avg_reduction,
            r.spec_avg_reduction
        );
    }
    // Hotness categories ordered by reduction.
    assert!(rows[0].spec_avg_reduction < rows[2].spec_avg_reduction);
    assert!(rows[2].spec_avg_reduction < rows[4].spec_avg_reduction);
}

#[test]
fn fig5_shape_heavy_block_skew() {
    let rows = experiments::fig5(quick());
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert_eq!(r.blocks.len(), 8);
        // Paper: orders-of-magnitude imbalance (up to ~340x); at quick
        // scale demand at least a strong skew.
        assert!(r.skew > 20.0, "{} skew only {}", r.dataset, r.skew);
        // The first block (most popular items) dominates.
        let max = *r.blocks.iter().max().expect("nonempty");
        assert_eq!(r.blocks[0], max);
    }
}

#[test]
fn fig6_shape_caching_unbalances_naive_placement() {
    let r = experiments::fig6(quick()).expect("fig6");
    // Caching cuts total traffic substantially (paper: ~40%).
    assert!(r.cache_reduction > 0.15, "reduction {}", r.cache_reduction);
    // NU is balanced; naive cache placement breaks the balance;
    // Algorithm 1 restores it.
    assert!(r.nu_imbalance() < 1.15);
    assert!(r.naive_imbalance() > r.nu_imbalance() + 0.05);
    assert!(r.ca_imbalance() < r.naive_imbalance());
}

#[test]
fn fig8_shape_system_ordering() {
    // One dataset per hotness class to keep runtime in check.
    for spec in [DatasetSpec::amazon_clothes(), DatasetSpec::goodreads()] {
        let row = experiments::fig8_one(&spec, quick()).expect("fig8");
        let s = row.speedups();
        // Hybrid loses to CPU; UpDLRM beats CPU and FAE.
        assert!(s[1] < 1.0, "{}: hybrid {}", row.dataset, s[1]);
        assert!(s[3] > 1.0, "{}: updlrm {}", row.dataset, s[3]);
        assert!(
            s[3] > s[2] * 0.95,
            "{}: updlrm {} vs fae {}",
            row.dataset,
            s[3],
            s[2]
        );
        assert!(s[2] > 1.0, "{}: fae {}", row.dataset, s[2]);
    }
}

#[test]
fn fig8_shape_high_hot_gains_most() {
    let low = experiments::fig8_one(&DatasetSpec::amazon_clothes(), quick()).expect("low hot");
    let high = experiments::fig8_one(&DatasetSpec::goodreads2(), quick()).expect("high hot");
    assert!(
        high.speedups()[3] > low.speedups()[3],
        "high hot {} should out-speedup low hot {}",
        high.speedups()[3],
        low.speedups()[3]
    );
}

#[test]
fn fig9_shape_ca_beats_nu_beats_u_on_hot_data() {
    let rows = experiments::fig9(&[DatasetSpec::goodreads()], quick()).expect("fig9");
    for n_c in [2usize, 4, 8] {
        let get = |tag: &str| {
            rows.iter()
                .find(|r| r.strategy == tag && r.n_c == n_c)
                .expect("row")
                .speedup()
        };
        let (u, nu, ca) = (get("U"), get("NU"), get("CA"));
        assert!(nu > u, "N_c {n_c}: NU {nu} vs U {u}");
        assert!(ca >= nu * 0.98, "N_c {n_c}: CA {ca} vs NU {nu}");
    }
}

#[test]
fn fig10_shape_stage3_grows_with_nc() {
    let rows = experiments::fig10(quick()).expect("fig10");
    for tag in ["U", "NU", "CA"] {
        let frac = |n_c: usize| {
            rows.iter()
                .find(|r| r.strategy == tag && r.n_c == n_c)
                .expect("row")
                .stage3_frac
        };
        assert!(
            frac(8) > frac(2),
            "{tag}: stage3 share should grow with N_c: {} -> {}",
            frac(2),
            frac(8)
        );
    }
    // Stage 2 dominates the embedding time for U/NU (the paper's
    // bottleneck claim), and CA reduces the total.
    let total = |tag: &str, n_c: usize| {
        rows.iter()
            .find(|r| r.strategy == tag && r.n_c == n_c)
            .expect("row")
            .total_ns
    };
    for n_c in [2usize, 4, 8] {
        assert!(total("CA", n_c) <= total("NU", n_c) * 1.02);
        assert!(total("NU", n_c) < total("U", n_c));
    }
}

#[test]
fn fig11_shape_linear_small_saturating_large() {
    let rows = experiments::fig11(quick()).expect("fig11");
    let t = |red: usize, size: usize| {
        rows.iter()
            .find(|r| r.avg_reduction == red && r.lookup_bytes == size)
            .expect("point")
            .lookup_us
    };
    // Growth factor from reduction 50 to 300 per lookup size.
    let growth_8 = t(300, 8) / t(50, 8);
    let growth_128 = t(300, 128) / t(50, 128);
    assert!(growth_8 > 2.5, "8 B should grow strongly: {growth_8}");
    assert!(
        growth_128 < growth_8 * 0.75,
        "128 B should saturate: {growth_128} vs {growth_8}"
    );
    // At high reduction, small lookups are the slowest (many tiny DMAs).
    assert!(t(300, 8) > t(300, 64));
}

#[test]
fn cache_capacity_shape_more_cache_less_lookup() {
    let rows = experiments::cache_capacity(quick()).expect("cache capacity");
    assert_eq!(rows.len(), 4);
    // Lookup time is non-increasing in capacity and the full cache
    // yields a real reduction (paper: 26%).
    for w in rows.windows(2) {
        assert!(w[1].lookup_ns <= w[0].lookup_ns * 1.02);
    }
    assert!(rows[3].reduction_vs_no_cache > 0.05);
}

#[test]
fn energy_shape_pim_saves_energy() {
    let rows = experiments::energy(&[DatasetSpec::goodreads()], quick()).expect("energy");
    assert!(
        rows[0].updlrm_uj < rows[0].cpu_uj,
        "PIM should save embedding energy"
    );
}

#[test]
fn updlrm_matches_cpu_functionally_at_harness_scale() {
    let setup = EvalSetup::build(&DatasetSpec::goodreads(), quick()).expect("setup");
    let mut cpu = setup.cpu().expect("cpu");
    let mut updlrm = setup
        .updlrm(PartitionStrategy::CacheAware, None)
        .expect("updlrm");
    use baselines::InferenceBackend;
    let batch = &setup.workload.batches[0];
    let (a, _) = cpu.run_batch(batch).expect("cpu run");
    let (b, _) = updlrm.run_batch(batch).expect("updlrm run");
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() < 1e-4, "outputs diverge: {x} vs {y}");
    }
}
