//! Validates the Eq. 1 analytic cost estimator against the measured
//! simulator: the estimator exists to *rank* tile shapes (the §3.1
//! exhaustive search), so its ordering must broadly agree with the
//! measured embedding times.

use baselines::InferenceBackend;
use bench::setup::{EvalConfig, EvalSetup};
use updlrm_core::{PartitionStrategy, TilingProblem};
use upmem_sim::CostModel;
use workloads::DatasetSpec;

#[test]
fn estimator_ranking_agrees_with_measurement_on_extremes() {
    let eval = EvalConfig::quick();
    let setup = EvalSetup::build(&DatasetSpec::goodreads(), eval).expect("setup");
    let problem = TilingProblem {
        rows: setup.spec.num_items,
        cols: 32,
        dpus: eval.nr_dpus / 8,
        batch_size: 64,
        avg_reduction: setup.workload.measured_avg_reduction(),
        emt_capacity_bytes: 48 << 20,
    };
    let cost = CostModel::default();

    let mut estimated = Vec::new();
    let mut measured = Vec::new();
    for n_c in [2usize, 4, 8] {
        let tiling = problem.tiling_for_nc(n_c, &cost).expect("feasible");
        estimated.push((n_c, tiling.est_cost_ns));
        let mut backend = setup
            .updlrm(PartitionStrategy::NonUniform, Some(n_c))
            .expect("backend");
        let mut total = 0.0;
        for batch in &setup.workload.batches {
            let (_, report) = backend.run_batch(batch).expect("run");
            total += report.pim.expect("pim").total_ns();
        }
        measured.push((n_c, total));
    }

    // The estimator's best and worst choices must match measurement's
    // best and worst (full rank agreement is not required of a
    // closed-form model, extreme agreement is).
    let arg_min = |v: &[(usize, f64)]| {
        v.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty")
            .0
    };
    let arg_max = |v: &[(usize, f64)]| {
        v.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty")
            .0
    };
    assert_eq!(
        arg_min(&estimated),
        arg_min(&measured),
        "estimator best {estimated:?} vs measured {measured:?}"
    );
    assert_eq!(
        arg_max(&estimated),
        arg_max(&measured),
        "estimator worst {estimated:?} vs measured {measured:?}"
    );
}

#[test]
fn auto_nc_is_never_the_worst_choice() {
    let eval = EvalConfig::quick();
    for spec in [DatasetSpec::amazon_clothes(), DatasetSpec::goodreads2()] {
        let setup = EvalSetup::build(&spec, eval).expect("setup");
        let measure = |n_c: Option<usize>| {
            let mut backend = setup
                .updlrm(PartitionStrategy::NonUniform, n_c)
                .expect("backend");
            let mut total = 0.0;
            for batch in &setup.workload.batches {
                let (_, report) = backend.run_batch(batch).expect("run");
                total += report.embedding_ns;
            }
            total
        };
        let auto = measure(None);
        let worst = [2usize, 4, 8]
            .into_iter()
            .map(|n| measure(Some(n)))
            .fold(0.0f64, f64::max);
        assert!(
            auto < worst,
            "{}: auto {auto} should beat the worst fixed choice {worst}",
            spec.short
        );
    }
}
