//! Table-scale sweep through the tiered placement planner: where does
//! tiering beat pure MRAM as embedding tables grow 10–100x past
//! today's Table-1 sizes?
//!
//! For each scale multiplier the sweep plans the same Zipf-profiled
//! catalog twice — once with the host-DRAM hot cache and replicated
//! hot shards enabled, once forced pure-cold (everything in MRAM
//! partitions) — then serves an identical trace through a
//! [`TieredEngine`] built from each plan and compares *modeled* batch
//! time. The knee shape is asserted, not eyeballed:
//!
//! 1. at every scale the tiered plan is no slower than pure MRAM;
//! 2. the absolute modeled time saved per batch grows with scale (a
//!    fixed-size hot tier keeps absorbing the Zipf head while the
//!    MRAM-only plan pays the EMT walk for all of it);
//! 3. by 10x and beyond, tiering wins by at least 1.3x;
//! 4. the planner's own cost estimate agrees with the simulated
//!    engine on *which* plan wins at every scale.
//!
//! The *measured* number tracked across PRs is host wall time of
//! `placement::plan` per catalog row — the planner is on the serving
//! control path (replanning on traffic shift), so its throughput is a
//! software cost worth gating. It lands in `BENCH_placement.json` at
//! the repo root. Flags (same protocol as `sched_sweep`):
//!
//! * `--smoke` — two scales, short window
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >20% ns/row regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use std::hint::black_box;

use bench::timing;
use dlrm_model::EmbeddingTable;
use placement::{plan, Catalog, PlacementPlan, PlannerConfig};
use serde::Value;
use updlrm_core::{TieredEngine, UpdlrmConfig};
use upmem_sim::RankTopology;
use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};

const NUM_TABLES: usize = 2;
const DIM: usize = 32;
const NUM_BATCHES: usize = 2;
/// Scale 1x = goodreads/5000 (472 rows/table), today's CI-sized table.
const BASE_DIVISOR: usize = 5000;
const NR_RANKS: usize = 4;
const DPUS_PER_RANK: usize = 16;
/// Hot tier stays fixed while tables grow: 512 host-cached rows/table
/// worth of DRAM plus the 64 hottest rows replicated on every DPU.
const HOST_CACHE_BYTES: usize = NUM_TABLES * 512 * DIM * 4;
const REPLICATE_TOP: usize = 64;
const EMT_CAPACITY_BYTES: usize = 2 << 20;

struct Sweep {
    /// Table-size multipliers over the 1x base catalog.
    scales: &'static [u64],
    window_ms: u64,
}

const FULL: Sweep = Sweep {
    scales: &[1, 10, 30, 100],
    window_ms: 200,
};
// Smoke keeps the endpoints so the knee direction is still checked;
// ns/row amortizes over catalog rows, so rows are comparable to the
// committed full sweep's at the same scale.
const SMOKE: Sweep = Sweep {
    scales: &[1, 100],
    window_ms: 30,
};

#[derive(serde::Serialize)]
struct Row {
    /// Nominal table-size multiplier (the baseline key).
    scale: u64,
    rows_per_table: usize,
    catalog_mb: f64,
    host_rows: usize,
    replicated_rows: usize,
    cold_rows: usize,
    /// Modeled embedding time per batch, simulated engine.
    tiered_batch_us: f64,
    mram_batch_us: f64,
    modeled_speedup: f64,
    /// The planner's own a-priori estimate of the same ratio.
    est_speedup: f64,
    /// Host wall time of `placement::plan` per catalog row (the
    /// software cost this bench tracks across PRs).
    measured_ns_per_row: f64,
    /// ns/row of the carried baseline row, 0.0 when none matched.
    baseline_ns_per_row: f64,
    /// baseline / measured; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn build(scale: u64) -> (DatasetSpec, Workload, Vec<EmbeddingTable>) {
    let divisor = (BASE_DIVISOR / scale as usize).max(1);
    let spec = DatasetSpec::goodreads().scaled_down(divisor);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches: NUM_BATCHES,
            ..TraceConfig::default()
        },
    );
    let tables = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (spec, workload, tables)
}

fn planner_config(tiered: bool) -> PlannerConfig {
    PlannerConfig {
        topology: RankTopology {
            nr_ranks: NR_RANKS,
            dpus_per_rank: DPUS_PER_RANK,
        },
        emt_capacity_bytes: EMT_CAPACITY_BYTES,
        host_cache_bytes: if tiered { HOST_CACHE_BYTES } else { 0 },
        replicate_top: if tiered { REPLICATE_TOP } else { 0 },
        ..PlannerConfig::default()
    }
}

/// Modeled embedding ns/batch when the workload is served through the
/// given plan.
fn modeled_batch_ns(p: &PlacementPlan, tables: &[EmbeddingTable], workload: &Workload) -> f64 {
    let config = UpdlrmConfig {
        batch_size: workload.config.batch_size,
        ..UpdlrmConfig::default()
    };
    let mut eng = TieredEngine::new(config, p, tables).expect("plan fits the simulated fleet");
    let mut total = 0.0;
    for b in &workload.batches {
        let (_, bd) = eng.run_batch(b).expect("batch serves");
        total += bd.total_ns();
    }
    total / workload.batches.len() as f64
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// scale -> measured ns/row, hand-parsed so schema drift across PRs
/// never breaks reading old files.
fn parse_rows(rows: &Value) -> Vec<(u64, f64)> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let scale = num(r.get("scale")?)? as u64;
            let ns = num(r.get("measured_ns_per_row")?)?;
            Some((scale, ns))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_placement.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    // Cargo runs bench binaries from the package directory, so resolve
    // relative paths against the repo root — CI passes plain
    // `BENCH_placement.json` and means the committed file.
    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    // In check mode a missing or malformed baseline is a failure, not a
    // free pass — CI relies on this to keep the committed trajectory
    // file honest.
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };

    println!(
        "placement sweep: {NUM_TABLES} tables, dim {DIM}, {NR_RANKS} ranks x \
         {DPUS_PER_RANK} DPUs, fixed hot tier ({} host rows + top-{REPLICATE_TOP} \
         replicated){}",
        HOST_CACHE_BYTES / (DIM * 4),
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for &scale in sweep.scales {
        let (spec, workload, tables) = build(scale);
        let catalog = Catalog::homogeneous(NUM_TABLES, spec.num_items, DIM);
        let profiles: Vec<FreqProfile> = (0..NUM_TABLES)
            .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
            .collect();
        let tiered_cfg = planner_config(true);
        let mram_cfg = planner_config(false);

        let tiered_plan = plan(&catalog, &profiles, &tiered_cfg).expect("tiered plan");
        let mram_plan = plan(&catalog, &profiles, &mram_cfg).expect("pure-MRAM plan");
        // Determinism identity before anything is timed.
        assert_eq!(
            tiered_plan.to_json(),
            plan(&catalog, &profiles, &tiered_cfg)
                .expect("replan")
                .to_json(),
            "scale {scale}x: plans differ across runs"
        );

        let tiered_ns = modeled_batch_ns(&tiered_plan, &tables, &workload);
        let mram_ns = modeled_batch_ns(&mram_plan, &tables, &workload);
        let est_speedup =
            tiered_plan.est.mram_batch_ns / tiered_plan.est.tiered_batch_ns.max(f64::MIN_POSITIVE);

        let m = timing::run_with_window(&format!("plan/scale{scale}"), sweep.window_ms, || {
            black_box(
                plan(
                    black_box(&catalog),
                    black_box(&profiles),
                    black_box(&tiered_cfg),
                )
                .expect("plans"),
            );
        });
        let total_rows = catalog.total_bytes() / (DIM * 4);
        let measured = m.mean_ns / total_rows as f64;
        let base = baseline_rows
            .iter()
            .find(|(s, _)| *s == scale)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0);
        let speedup_vs_baseline = if base > 0.0 { base / measured } else { 0.0 };

        let host: usize = tiered_plan.tables.iter().map(|t| t.host_rows.len()).sum();
        let rep: usize = tiered_plan
            .tables
            .iter()
            .map(|t| t.replicated_rows.len())
            .sum();
        let cold = tiered_plan.total_rows() - host - rep;
        println!(
            "  scale {scale:>3}x  {:>7} rows/table  tiered {:>9.1} us  mram {:>9.1} us  \
             ({:.2}x modeled, {:.2}x planner est)  {measured:>7.1} ns/row{}",
            spec.num_items,
            tiered_ns / 1e3,
            mram_ns / 1e3,
            mram_ns / tiered_ns,
            est_speedup,
            if base > 0.0 {
                format!("  {speedup_vs_baseline:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured > base * 1.20 {
            regressions.push(format!(
                "scale {scale}x: {measured:.1} ns/row vs baseline {base:.1} (+{:.0}%)",
                (measured / base - 1.0) * 100.0
            ));
        }
        rows.push(Row {
            scale,
            rows_per_table: spec.num_items,
            catalog_mb: catalog.total_bytes() as f64 / (1 << 20) as f64,
            host_rows: host,
            replicated_rows: rep,
            cold_rows: cold,
            tiered_batch_us: tiered_ns / 1e3,
            mram_batch_us: mram_ns / 1e3,
            modeled_speedup: mram_ns / tiered_ns,
            est_speedup,
            measured_ns_per_row: measured,
            baseline_ns_per_row: base,
            speedup_vs_baseline,
        });
    }

    // The knee itself, asserted on modeled time.
    for r in &rows {
        assert!(
            r.tiered_batch_us <= r.mram_batch_us * 1.001,
            "scale {}x: tiering must never lose to pure MRAM ({:.1} vs {:.1} us)",
            r.scale,
            r.tiered_batch_us,
            r.mram_batch_us
        );
        assert!(
            (r.est_speedup > 1.0) == (r.modeled_speedup > 1.0)
                || (r.modeled_speedup - 1.0).abs() < 0.05,
            "scale {}x: planner estimate ({:.2}x) and simulation ({:.2}x) disagree on the winner",
            r.scale,
            r.est_speedup,
            r.modeled_speedup
        );
    }
    // The knee: below it the fixed hot tier holds essentially the whole
    // catalog (tiering wins trivially, pure MRAM wastes the fleet's
    // parallelism on a table that fits a handful of partitions); past it
    // cold mass dominates and the win settles onto the Zipf-head
    // asymptote — smaller, but still decisive at 10-100x.
    for w in rows.windows(2) {
        assert!(
            w[1].modeled_speedup <= w[0].modeled_speedup * 1.05,
            "speedup must decay toward the Zipf-head asymptote as tables outgrow \
             the hot tier ({:.2}x at {}x vs {:.2}x at {}x)",
            w[0].modeled_speedup,
            w[0].scale,
            w[1].modeled_speedup,
            w[1].scale
        );
        let cold_frac = |r: &Row| r.cold_rows as f64 / (r.rows_per_table * NUM_TABLES) as f64;
        assert!(
            cold_frac(&w[1]) >= cold_frac(&w[0]),
            "the cold fraction must grow as tables outgrow the fixed hot tier"
        );
    }
    for r in rows.iter().filter(|r| r.scale >= 10) {
        assert!(
            r.modeled_speedup >= 1.3,
            "scale {}x: past the knee tiering must still win by 1.3x+ (got {:.2}x)",
            r.scale,
            r.modeled_speedup
        );
    }
    println!("knee OK: tiering never loses, decays to a 1.3x+ Zipf-head win at 10-100x");

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >20% ns/row regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("placement_sweep".into())),
        ("dataset".into(), Value::Str("goodreads, scaled".into())),
        ("num_tables".into(), Value::UInt(NUM_TABLES as u64)),
        ("dim".into(), Value::UInt(DIM as u64)),
        ("nr_ranks".into(), Value::UInt(NR_RANKS as u64)),
        ("dpus_per_rank".into(), Value::UInt(DPUS_PER_RANK as u64)),
        (
            "host_cache_bytes".into(),
            Value::UInt(HOST_CACHE_BYTES as u64),
        ),
        ("replicate_top".into(), Value::UInt(REPLICATE_TOP as u64)),
        ("num_batches".into(), Value::UInt(NUM_BATCHES as u64)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
