//! Micro-benchmarks for the workspace's hot paths.
//!
//! These complement the figure binaries: the binaries report *modeled*
//! hardware time, while these measure the *simulator's own* throughput
//! (how fast the reproduction runs on the host). Uses the in-tree
//! `bench::timing` harness rather than criterion so the workspace
//! builds without registry access.

use bench::timing;
use dlrm_model::{EmbeddingTable, SparseInput};
use std::hint::black_box;
use updlrm_core::{
    build_stream, non_uniform, uniform, PartitionStrategy, UpdlrmConfig, UpdlrmEngine,
};
use upmem_sim::{CostModel, DpuId, PimConfig, PimSystem};
use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload, ZipfSampler};

fn bench_mram_dma() {
    for size in [8usize, 64, 512, 2048] {
        let mut sys = PimSystem::new(PimConfig::new(1, 1)).unwrap();
        sys.load_mram(DpuId(0), 0, &vec![7u8; 4096]).unwrap();
        let mut buf = vec![0u8; size];
        let dpu = sys.dpu(DpuId(0)).unwrap();
        timing::run(&format!("mram_dma_read/{size}"), || {
            dpu.mram().dma_read(black_box(0), &mut buf).unwrap();
            black_box(&buf);
        });
    }
}

fn bench_dma_cost_model() {
    let cost = CostModel::default();
    timing::run("dma_cost_model", || {
        let mut acc = 0.0;
        for len in (8..=2048).step_by(8) {
            acc += cost.dma_nanos(black_box(len));
        }
        black_box(acc);
    });
}

fn bench_zipf() {
    for n in [1_000usize, 100_000] {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let z = ZipfSampler::new(n, 1.05);
        let mut rng = StdRng::seed_from_u64(3);
        timing::run(&format!("zipf_sample/{n}"), || {
            black_box(z.sample(&mut rng));
        });
    }
}

fn bench_bag_sum() {
    let table = EmbeddingTable::random(100_000, 32, 0.1, 5).unwrap();
    let input = SparseInput::from_samples((0..64u64).map(|s| {
        (0..100)
            .map(|i| (s * 997 + i * 131) % 100_000)
            .collect::<Vec<_>>()
    }));
    timing::run("embedding_bag_sum_64x100", || {
        black_box(table.bag_sum(black_box(&input)).unwrap());
    });
}

fn bench_build_stream() {
    let refs: Vec<Vec<u32>> = (0..64)
        .map(|s| (0..200u32).map(|i| (s * 31 + i * 7) % 4096).collect())
        .collect();
    timing::run("build_stream/csr", || {
        black_box(build_stream(&refs, 14, false));
    });
    timing::run("build_stream/dedup", || {
        black_box(build_stream(&refs, 14, true));
    });
}

fn bench_partitioners() {
    let spec = DatasetSpec::goodreads().scaled_down(100);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 1,
            num_batches: 4,
            ..Default::default()
        },
    );
    let profile = FreqProfile::from_inputs(spec.num_items, workload.table_inputs(0));
    timing::run("partition/uniform_23k_rows", || {
        black_box(uniform(spec.num_items, 8, spec.num_items, &profile).unwrap());
    });
    timing::run("partition/non_uniform_23k_rows", || {
        black_box(non_uniform(spec.num_items, 8, spec.num_items, &profile).unwrap());
    });
}

fn bench_engine_batch() {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 1,
            ..Default::default()
        },
    );
    let tables: Vec<EmbeddingTable> = (0..2)
        .map(|t| EmbeddingTable::random(spec.num_items, 32, 0.1, t).unwrap())
        .collect();
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);
    let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
    timing::run("engine_run_batch_2tables", || {
        black_box(engine.run_batch(&workload.batches[0]).unwrap());
    });
}

fn bench_profile() {
    let spec = DatasetSpec::movie().scaled_down(100);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 1,
            num_batches: 4,
            ..Default::default()
        },
    );
    timing::run("freq_profile_from_trace", || {
        black_box(FreqProfile::from_inputs(
            spec.num_items,
            workload.table_inputs(0),
        ));
    });
}

fn main() {
    bench_mram_dma();
    bench_dma_cost_model();
    bench_zipf();
    bench_bag_sum();
    bench_build_stream();
    bench_partitioners();
    bench_engine_batch();
    bench_profile();
}
