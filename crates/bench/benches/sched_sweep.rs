//! Open-loop QPS sweep through the serving scheduler: the p99-vs-load
//! curve and its saturation knee.
//!
//! The sweep first probes engine capacity (a deliberately saturating
//! run whose achieved QPS *is* the service capacity, since the batcher
//! then always forms full batches), then offers Poisson load at fixed
//! multiples of that capacity. On modeled time the expected knee shape
//! is asserted, not eyeballed:
//!
//! 1. below capacity, achieved tracks offered and nothing is shed;
//! 2. above capacity, achieved plateaus at the probe's capacity while
//!    p99 latency grows and the shed counter goes nonzero;
//! 3. two runs of any load point produce identical `SchedReport`s
//!    (the scheduler is wall-clock-free).
//!
//! The *measured* number tracked across PRs is the simulator's own
//! wall clock per offered request around `Scheduler::run` — the cost
//! of the event loop + admission queue + batch assembly + engine. It
//! lands in `BENCH_sched.json` at the repo root. Flags (same protocol
//! as `steady_state`):
//!
//! * `--smoke` — two load points, short window
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >20% ns/request regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use std::hint::black_box;

use bench::timing;
use dlrm_model::EmbeddingTable;
use scheduler::{OverloadPolicy, SchedConfig, SchedReport, Scheduler};
use serde::Value;
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

const NUM_TABLES: usize = 4;
const NR_DPUS: usize = 64;
const DIM: usize = 32;
const MAX_BATCH: usize = 32;
const MAX_WAIT_NS: u64 = 200_000;
const QUEUE_CAP: usize = 64;
const ARRIVAL_SEED: u64 = 7;

struct Sweep {
    /// Offered load as percent of probed capacity.
    load_pct: &'static [u64],
    num_batches: usize,
    window_ms: u64,
}

const FULL: Sweep = Sweep {
    load_pct: &[25, 50, 100, 200, 400],
    num_batches: 8,
    window_ms: 300,
};
// Smoke trims load points and the timing window but keeps the trace
// length: ns/request amortizes per-run fixed costs over the request
// count, so rows are only comparable to the committed full sweep's at
// the same trace length.
const SMOKE: Sweep = Sweep {
    load_pct: &[50, 400],
    num_batches: FULL.num_batches,
    window_ms: 30,
};

#[derive(serde::Serialize)]
struct Row {
    /// Offered load, percent of probed capacity (the baseline key).
    load_pct: u64,
    offered_qps: f64,
    achieved_qps: f64,
    completed: u64,
    shed: u64,
    batches: u64,
    mean_batch_size: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    /// Simulator wall clock per *offered* request (the software cost
    /// this bench tracks across PRs).
    measured_ns_per_request: f64,
    /// ns/request of the carried baseline row, 0.0 when none matched.
    baseline_ns_per_request: f64,
    /// baseline / measured; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn build(num_batches: usize) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches,
            ..TraceConfig::default()
        },
    );
    let tables = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(tables: &[EmbeddingTable], workload: &Workload) -> UpdlrmEngine {
    let mut config = UpdlrmConfig::with_dpus(NR_DPUS, PartitionStrategy::CacheAware)
        // Serial fleet execution keeps the run allocation-free and the
        // measured number about the event loop, not thread spawning.
        .with_host_threads(1);
    config.batch_size = MAX_BATCH;
    UpdlrmEngine::from_workload(config, tables, workload).expect("engine builds")
}

fn sched() -> Scheduler {
    Scheduler::new(SchedConfig {
        max_batch_size: MAX_BATCH,
        max_wait_ns: MAX_WAIT_NS,
        queue_cap: QUEUE_CAP,
        policy: OverloadPolicy::ShedOldest,
    })
    .expect("valid config")
}

fn run_once(eng: &mut UpdlrmEngine, workload: &Workload, s: &mut Scheduler) -> SchedReport {
    s.run(eng, workload, |_, _, _, _| {}).expect("runs")
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// load_pct -> measured ns/request, hand-parsed so schema drift across
/// PRs never breaks reading old files.
fn parse_rows(rows: &Value) -> Vec<(u64, f64)> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let pct = num(r.get("load_pct")?)? as u64;
            let ns = num(r.get("measured_ns_per_request")?)?;
            Some((pct, ns))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_sched.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    // Cargo runs bench binaries from the package directory, so resolve
    // relative paths against the repo root — CI passes plain
    // `BENCH_sched.json` and means the committed file.
    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    // In check mode a missing or malformed baseline is a failure, not a
    // free pass — CI relies on this to keep the committed trajectory
    // file honest.
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };

    let (tables, base_workload) = build(sweep.num_batches);

    // Capacity probe: offer load far above anything serveable; with a
    // shed-oldest queue the engine then runs back-to-back full batches,
    // so achieved QPS is its service capacity.
    let mut probe_wl = base_workload.clone();
    probe_wl.stamp_arrivals(ArrivalProcess::poisson(1e9, ARRIVAL_SEED));
    let mut eng = engine(&tables, &base_workload);
    let capacity_qps = run_once(&mut eng, &probe_wl, &mut sched()).achieved_qps;
    println!(
        "sched sweep: {NUM_TABLES} tables x {NR_DPUS} DPUs, goodreads/2000, \
         max-batch {MAX_BATCH}, probed capacity {capacity_qps:.0} qps{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut reports: Vec<(u64, SchedReport)> = Vec::new();
    for &pct in sweep.load_pct {
        let offered = capacity_qps * pct as f64 / 100.0;
        let mut wl = base_workload.clone();
        wl.stamp_arrivals(ArrivalProcess::poisson(offered, ARRIVAL_SEED));
        let mut s = sched();

        // Determinism identity before anything is timed: the scheduler
        // runs on modeled time only, so two runs agree exactly.
        let report = run_once(&mut eng, &wl, &mut s);
        assert_eq!(
            report,
            run_once(&mut eng, &wl, &mut s),
            "load {pct}%: reports differ across runs"
        );

        let m = timing::run_with_window(&format!("sched/load{pct}"), sweep.window_ms, || {
            black_box(run_once(black_box(&mut eng), black_box(&wl), &mut s));
        });
        let measured = m.mean_ns / report.requests as f64;
        let base = baseline_rows
            .iter()
            .find(|(p, _)| *p == pct)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0);
        let speedup = if base > 0.0 { base / measured } else { 0.0 };
        println!(
            "  load {pct:>3}%  offered {offered:>9.0} qps  achieved {:>9.0} qps  \
             p99 {:>8.1} us  shed {:>4}  fill {:>4.1}  {measured:>7.1} ns/request{}",
            report.achieved_qps,
            report.p99_latency_ns / 1e3,
            report.shed,
            report.mean_batch_size,
            if base > 0.0 {
                format!("  {speedup:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured > base * 1.20 {
            regressions.push(format!(
                "load {pct}%: {measured:.1} ns/request vs baseline {base:.1} (+{:.0}%)",
                (measured / base - 1.0) * 100.0
            ));
        }
        rows.push(Row {
            load_pct: pct,
            offered_qps: offered,
            achieved_qps: report.achieved_qps,
            completed: report.completed,
            shed: report.shed,
            batches: report.batches,
            mean_batch_size: report.mean_batch_size,
            p50_latency_us: report.p50_latency_ns / 1e3,
            p99_latency_us: report.p99_latency_ns / 1e3,
            measured_ns_per_request: measured,
            baseline_ns_per_request: base,
            speedup_vs_baseline: speedup,
        });
        reports.push((pct, report));
    }

    // The knee itself, asserted on modeled time.
    let at = |pct: u64| &reports.iter().find(|(p, _)| *p == pct).unwrap().1;
    let lowest = at(sweep.load_pct[0]);
    let highest = at(*sweep.load_pct.last().unwrap());
    assert_eq!(lowest.shed, 0, "below capacity nothing is shed");
    assert!(
        highest.shed > 0,
        "above capacity the shed-oldest policy must drop load"
    );
    assert!(
        highest.p99_latency_ns > lowest.p99_latency_ns,
        "p99 must grow with load ({} vs {})",
        highest.p99_latency_ns,
        lowest.p99_latency_ns
    );
    assert!(
        highest.achieved_qps <= capacity_qps * 1.05,
        "achieved QPS must plateau at capacity ({} vs {capacity_qps})",
        highest.achieved_qps
    );
    if !smoke {
        // Overload points plateau at the same achieved throughput.
        let (a2, a4) = (at(200).achieved_qps, at(400).achieved_qps);
        assert!(
            (a4 - a2).abs() <= 0.10 * a2,
            "overloaded points must plateau together ({a2} vs {a4})"
        );
    }
    println!("knee OK: plateau at {capacity_qps:.0} qps, p99 grows, shedding engages");

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >20% ns/request regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("sched_sweep".into())),
        ("dataset".into(), Value::Str("goodreads/2000".into())),
        ("nr_dpus".into(), Value::UInt(NR_DPUS as u64)),
        ("num_tables".into(), Value::UInt(NUM_TABLES as u64)),
        ("dim".into(), Value::UInt(DIM as u64)),
        ("max_batch".into(), Value::UInt(MAX_BATCH as u64)),
        ("max_wait_ns".into(), Value::UInt(MAX_WAIT_NS)),
        ("queue_cap".into(), Value::UInt(QUEUE_CAP as u64)),
        ("policy".into(), Value::Str("shed-oldest".into())),
        ("capacity_qps".into(), Value::Float(capacity_qps)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
