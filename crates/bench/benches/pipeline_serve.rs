//! Sequential vs executed double-buffered serving.
//!
//! Serves the same batch stream twice through `UpdlrmEngine::serve` —
//! once back-to-back, once double-buffered — sweeping the number of
//! batches, and records the modeled walls, throughput, and tail
//! latency. Two invariants are asserted along the way: the executed
//! double-buffered wall equals the analytic `pipelined_wall_ns` of the
//! collected breakdowns bit-for-bit, and pipelining never loses to the
//! sequential schedule for two or more batches. Results land in
//! repo-root `BENCH_pipeline.json`.

use dlrm_model::EmbeddingTable;
use updlrm_core::{
    pipelined_wall_ns, sequential_wall_ns, PartitionStrategy, PipelineMode, UpdlrmConfig,
    UpdlrmEngine,
};
use workloads::{DatasetSpec, TraceConfig, Workload};

const NUM_TABLES: usize = 4;
const NR_DPUS: usize = 64;
const DIM: usize = 32;
const BATCH_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn build(num_batches: usize) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches,
            ..TraceConfig::default()
        },
    );
    let tables = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

#[derive(serde::Serialize)]
struct SweepRow {
    batches: usize,
    sequential_wall_ns: f64,
    pipelined_wall_ns: f64,
    speedup: f64,
    pipelined_matches_model: bool,
    throughput_qps: f64,
    p50_latency_ns: f64,
    p95_latency_ns: f64,
    p99_latency_ns: f64,
}

#[derive(serde::Serialize)]
struct Output {
    nr_dpus: usize,
    num_tables: usize,
    dataset: String,
    rows: Vec<SweepRow>,
}

fn main() {
    println!("serve sweep: {NUM_TABLES} tables x {NR_DPUS} DPUs, goodreads/2000");
    let mut rows = Vec::new();
    for &n in &BATCH_SWEEP {
        let (tables, workload) = build(n);
        let config = UpdlrmConfig::with_dpus(NR_DPUS, PartitionStrategy::CacheAware);

        let mut seq_engine = UpdlrmEngine::from_workload(
            config.clone().with_pipeline_mode(PipelineMode::Sequential),
            &tables,
            &workload,
        )
        .expect("engine builds");
        let seq = seq_engine.serve(&workload.batches).expect("serves");

        let mut dbl_engine = UpdlrmEngine::from_workload(
            config.with_pipeline_mode(PipelineMode::DoubleBuf),
            &tables,
            &workload,
        )
        .expect("engine builds");
        let dbl = dbl_engine.serve(&workload.batches).expect("serves");

        assert_eq!(seq.pooled, dbl.pooled, "schedules must agree functionally");
        let matches_model =
            dbl.report.wall_ns.to_bits() == pipelined_wall_ns(&dbl.breakdowns).to_bits();
        assert!(matches_model, "executed wall departed from the model");
        assert_eq!(
            seq.report.wall_ns.to_bits(),
            sequential_wall_ns(&seq.breakdowns).to_bits()
        );
        if n >= 2 {
            assert!(
                dbl.report.wall_ns <= seq.report.wall_ns,
                "pipelined {} > sequential {} at {n} batches",
                dbl.report.wall_ns,
                seq.report.wall_ns
            );
        }

        let speedup = seq.report.wall_ns / dbl.report.wall_ns;
        println!(
            "  batches={n:<2} sequential {:>10.1} us  pipelined {:>10.1} us  speedup {speedup:.3}x",
            seq.report.wall_ns / 1e3,
            dbl.report.wall_ns / 1e3,
        );
        rows.push(SweepRow {
            batches: n,
            sequential_wall_ns: seq.report.wall_ns,
            pipelined_wall_ns: dbl.report.wall_ns,
            speedup,
            pipelined_matches_model: matches_model,
            throughput_qps: dbl.report.throughput_qps,
            p50_latency_ns: dbl.report.p50_latency_ns,
            p95_latency_ns: dbl.report.p95_latency_ns,
            p99_latency_ns: dbl.report.p99_latency_ns,
        });
    }

    let out = Output {
        nr_dpus: NR_DPUS,
        num_tables: NUM_TABLES,
        dataset: "goodreads/2000".to_string(),
        rows,
    };
    let json = serde::json::to_string_pretty(&out);
    // cargo runs benches with cwd = the package dir; anchor at the
    // repo root, where all BENCH_*.json trajectory files live.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
