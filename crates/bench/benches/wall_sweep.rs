//! Wall-clock serving throughput across shard counts: the measured
//! counterpart of `sched_sweep`'s modeled curve.
//!
//! The bench saturates the concurrent runtime (all arrivals offered
//! up front, queue sized to hold the whole trace) so the measured QPS
//! *is* the engine-worker service capacity at each shard count, then
//! records it next to what the modeled oracle predicts for the same
//! trace. Before anything is timed, the deterministic-mode lock is
//! asserted: `Runtime` with `deterministic: true` must reproduce the
//! modeled `Scheduler::run` report byte for byte — a wall_sweep run
//! doubles as an end-to-end differential check.
//!
//! Wall numbers are machine- and neighbour-dependent, so the `--check`
//! gate is deliberately loose: a row regresses only when measured QPS
//! falls below 65% of the committed baseline. Modeled fields stay
//! exact. Output lands in `BENCH_wall.json` at the repo root. Flags
//! (same protocol as `sched_sweep`):
//!
//! * `--smoke` — fewer shard counts, shorter trace
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >35% measured-QPS regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use dlrm_model::EmbeddingTable;
use runtime::{Runtime, RuntimeConfig, RuntimeReport};
use scheduler::{report_is_finite, OverloadPolicy, SchedConfig, Scheduler};
use serde::Value;
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

const NUM_TABLES: usize = 2;
const NR_DPUS: usize = 32;
const DIM: usize = 32;
const MAX_BATCH: usize = 64;
const MAX_WAIT_NS: u64 = 200_000;
const ARRIVAL_SEED: u64 = 7;
/// Offered far above capacity: every arrival is queued immediately,
/// so measured QPS is pure drain rate.
const SATURATING_QPS: f64 = 10_000_000.0;

struct Sweep {
    shard_counts: &'static [usize],
    num_batches: usize,
}

const FULL: Sweep = Sweep {
    shard_counts: &[1, 2, 4],
    num_batches: 4,
};
const SMOKE: Sweep = Sweep {
    shard_counts: &[1, 2],
    num_batches: 2,
};

#[derive(serde::Serialize)]
struct Row {
    /// Engine workers (the baseline key).
    shards: u64,
    requests: u64,
    completed: u64,
    batches: u64,
    /// Completed requests per second of real wall time — the measured
    /// number this bench tracks across PRs.
    measured_qps: f64,
    wall_ms: f64,
    measured_p50_us: f64,
    measured_p95_us: f64,
    /// What the modeled oracle achieves on the same saturating trace.
    modeled_qps: f64,
    modeled_p95_us: f64,
    /// QPS of the carried baseline row, 0.0 when none matched.
    baseline_qps: f64,
    /// measured / baseline; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn build(num_batches: usize) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(ArrivalProcess::poisson(SATURATING_QPS, ARRIVAL_SEED));
    let tables = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engines(tables: &[EmbeddingTable], workload: &Workload, shards: usize) -> Vec<UpdlrmEngine> {
    (0..shards)
        .map(|_| {
            let mut config = UpdlrmConfig::with_dpus(NR_DPUS, PartitionStrategy::CacheAware)
                .with_host_threads(1);
            config.batch_size = MAX_BATCH;
            let mut eng =
                UpdlrmEngine::from_workload(config, tables, workload).expect("engine builds");
            // Warm each engine's serve scratch before the measured run:
            // a cold first serve costs ~20x a steady one and would make
            // throughput a warmup count, not a drain rate.
            eng.serve_stream(&workload.batches[..1], |_, _, _| {})
                .expect("warmup serves");
            eng
        })
        .collect()
}

fn sched_config(queue_cap: usize) -> SchedConfig {
    SchedConfig {
        max_batch_size: MAX_BATCH,
        max_wait_ns: MAX_WAIT_NS,
        queue_cap,
        policy: OverloadPolicy::ShedOldest,
    }
}

fn run_wall(
    tables: &[EmbeddingTable],
    workload: &Workload,
    queue_cap: usize,
    shards: usize,
    deterministic: bool,
) -> RuntimeReport {
    let mut eng = engines(tables, workload, shards);
    let rt = Runtime::new(RuntimeConfig {
        sched: sched_config(queue_cap),
        shards,
        time_scale: 1.0,
        deterministic,
        ring_capacity: 64,
    })
    .expect("valid runtime config");
    rt.run(&mut eng, workload, |_, _, _, _| {})
        .expect("wall run completes")
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// shards -> measured QPS, hand-parsed so schema drift across PRs
/// never breaks reading old files.
fn parse_rows(rows: &Value) -> Vec<(u64, f64)> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let shards = num(r.get("shards")?)? as u64;
            let qps = num(r.get("measured_qps")?)?;
            Some((shards, qps))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_wall.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    // Cargo runs bench binaries from the package directory, so resolve
    // relative paths against the repo root — CI passes plain
    // `BENCH_wall.json` and means the committed file.
    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    // In check mode a missing or malformed baseline is a failure, not a
    // free pass — CI relies on this to keep the committed file honest.
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };

    let (tables, workload) = build(sweep.num_batches);
    let total_queries: usize = workload.batches.iter().map(|b| b.batch_size()).sum();
    // Queue holds the entire trace: nothing sheds, so every run
    // completes exactly `total_queries` requests and measured QPS is
    // directly comparable across shard counts.
    let queue_cap = total_queries.max(MAX_BATCH);

    // The modeled oracle for this trace — and the deterministic lock:
    // a 2-shard deterministic run must reproduce its report exactly.
    let mut oracle_eng = engines(&tables, &workload, 1);
    let mut oracle_sched = Scheduler::new(sched_config(queue_cap)).expect("valid config");
    let modeled = oracle_sched
        .run(&mut oracle_eng[0], &workload, |_, _, _, _| {})
        .expect("oracle runs");
    let det = run_wall(&tables, &workload, queue_cap, 2, true);
    assert_eq!(
        det.sched, modeled,
        "deterministic runtime must reproduce the modeled scheduler byte for byte"
    );
    println!(
        "wall sweep: {NUM_TABLES} tables x {NR_DPUS} DPUs, goodreads/2000, \
         {total_queries} queries, oracle lock OK{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for &shards in sweep.shard_counts {
        let r = run_wall(&tables, &workload, queue_cap, shards, false);
        assert_eq!(
            r.sched.completed, r.sched.requests,
            "{shards} shards: queue holds the trace, nothing may shed"
        );
        assert!(report_is_finite(&r.sched), "{shards} shards: {:?}", r.sched);
        let measured = r.wall.measured_qps;
        let base = baseline_rows
            .iter()
            .find(|(s, _)| *s == shards as u64)
            .map(|(_, qps)| *qps)
            .unwrap_or(0.0);
        let speedup = if base > 0.0 { measured / base } else { 0.0 };
        println!(
            "  shards {shards}  measured {measured:>9.0} qps over {:>7.1} ms  \
             p95 {:>9.1} us  (modeled {:>9.0} qps){}",
            r.wall.wall_elapsed_ns / 1e6,
            r.sched.p95_latency_ns / 1e3,
            modeled.achieved_qps,
            if base > 0.0 {
                format!("  {speedup:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured < base * 0.65 {
            regressions.push(format!(
                "shards {shards}: {measured:.0} qps vs baseline {base:.0} (-{:.0}%)",
                (1.0 - measured / base) * 100.0
            ));
        }
        rows.push(Row {
            shards: shards as u64,
            requests: r.sched.requests,
            completed: r.sched.completed,
            batches: r.sched.batches,
            measured_qps: measured,
            wall_ms: r.wall.wall_elapsed_ns / 1e6,
            measured_p50_us: r.sched.p50_latency_ns / 1e3,
            measured_p95_us: r.sched.p95_latency_ns / 1e3,
            modeled_qps: modeled.achieved_qps,
            modeled_p95_us: modeled.p95_latency_ns / 1e3,
            baseline_qps: base,
            speedup_vs_baseline: speedup,
        });
    }

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >35% measured-QPS regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("wall_sweep".into())),
        ("dataset".into(), Value::Str("goodreads/2000".into())),
        ("nr_dpus".into(), Value::UInt(NR_DPUS as u64)),
        ("num_tables".into(), Value::UInt(NUM_TABLES as u64)),
        ("dim".into(), Value::UInt(DIM as u64)),
        ("max_batch".into(), Value::UInt(MAX_BATCH as u64)),
        ("max_wait_ns".into(), Value::UInt(MAX_WAIT_NS)),
        ("queue_cap".into(), Value::UInt(queue_cap as u64)),
        ("policy".into(), Value::Str("shed-oldest".into())),
        ("offered_qps".into(), Value::Float(SATURATING_QPS)),
        ("modeled_qps".into(), Value::Float(modeled.achieved_qps)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
