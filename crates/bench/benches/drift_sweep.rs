//! Drift-resilience bench: p99 under non-stationary traffic, with and
//! without live re-partitioning (DESIGN.md §4.11).
//!
//! Seven arms deploy the same naive uniform partition — each
//! contiguous hot set lands almost entirely on a single DPU — and
//! differ only in what they serve and whether the replanner runs:
//!
//! * `steady-replan` — traffic never drifts; the replanner's first
//!   refit balances the placement and later refits keep it balanced.
//!   This arm defines the p99 baseline.
//! * `rotate-replan` / `rotate-static` — the hot set rotates, walking
//!   the bottleneck across DPUs; the replan arm refits to the sliding
//!   window and migrates EMT shards mid-serving, the static arm keeps
//!   the deployment-time partition and the backlog compounds.
//! * `spike-replan` / `spike-static` — a flash crowd: popularity
//!   pinned to set 0 except for one long window that piles most
//!   lookups onto a different hot set (`rate_boost` stays 1.0 so the
//!   arrival stamps match the steady arm; only popularity moves).
//! * `diurnal-rotate-replan` / `diurnal-rotate-static` — the rotation
//!   with a sinusoidal rate curve on top: the daily peak offers
//!   1.4x the mean rate exactly while the hot set is mid-walk.
//!
//! Asserted on modeled time (the drift-resilience gate CI runs):
//!
//! 1. p99(replan arm) / p99(steady-replan) <= 2.0 for every drifting
//!    replan arm — replanning bounds the degradation;
//! 2. p99(static arm) / p99(steady-replan) > 2.0 for every drifting
//!    static control — the scenario really degrades, so gate 1 is not
//!    vacuously true;
//! 3. every replan arm actually migrated (counters nonzero), the
//!    static controls never did, and two runs of each arm produce
//!    identical reports + drift counters.
//!
//! The *measured* number tracked across PRs is wall time per offered
//! request around engine build + `Scheduler::run` (a fresh engine per
//! iteration, since replanning mutates placement). It lands in
//! `BENCH_drift.json` at the repo root. Flags (same protocol as
//! `sched_sweep`):
//!
//! * `--smoke` — short timing window, same traces and gates
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >20% ns/request regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use std::hint::black_box;

use bench::timing;
use dlrm_model::EmbeddingTable;
use scheduler::{OverloadPolicy, SchedConfig, SchedReport, Scheduler};
use serde::Value;
use updlrm_core::{DriftSnapshot, PartitionStrategy, ReplanPolicy, UpdlrmConfig, UpdlrmEngine};
use workloads::{
    ArrivalProcess, DatasetSpec, DiurnalCurve, DriftSchedule, FlashCrowd, HotSetRotation,
    TraceConfig, Workload,
};

const NUM_TABLES: usize = 4;
/// 16 DPUs per table: the 32-wide rows tile into 4 column slices
/// (n_c = 8), leaving 4 row parts per table — enough that a stale hot
/// set concentrated on one row part visibly caps throughput.
const NR_DPUS: usize = 64;
const DIM: usize = 32;
const MAX_BATCH: usize = 32;
const MAX_WAIT_NS: u64 = 200_000;
const QUEUE_CAP: usize = 512;
const ARRIVAL_SEED: u64 = 7;

/// Hot-set geometry: 4 sets of 256 rows over goodreads/2000 (1180
/// rows), 60% of lookups redirected into the active set. A uniform
/// partition puts ~295 contiguous rows on each of the 4 row parts, so
/// each hot set lands almost entirely on one part — and rotation
/// walks that bottleneck across the parts.
const NUM_SETS: usize = 4;
const SET_SIZE: usize = 256;
const HOT_FRACTION: f64 = 0.6;
/// Offered load as a fraction of the balanced engine's probed
/// capacity: comfortably below a fit placement, above a stale one.
const LOAD_FRAC: f64 = 0.6;
/// Replanner cadence in served batches.
const REPLAN_EVERY: u64 = 4;
/// Rotation period in offered requests (so in modeled time it scales
/// with the probed capacity): several replan windows per rotation.
const ROT_REQUESTS: f64 = 512.0;
/// Flash crowd: piles `SPIKE_EXTRA_HOT` more of the traffic onto hot
/// set 2 (instead of the pinned set 0) for the middle half of the
/// trace. The rate multiplier stays 1.0 so the arrival stamps match
/// the steady arm exactly — only popularity concentration moves.
const SPIKE_TARGET_SET: usize = 2;
const SPIKE_EXTRA_HOT: f64 = 0.35;
/// Diurnal curve: two full cycles per trace, +/-40% around the mean
/// offered rate, riding on the same rotation as the rotate arms.
const DIURNAL_CYCLES: f64 = 2.0;
const DIURNAL_AMPLITUDE: f64 = 0.4;
/// The resilience gate shared by every drifting arm pair: each replan
/// arm must hold p99 within this factor of steady, and each static
/// control must exceed it (anti-vacuous).
const GATE_RATIO: f64 = 2.0;

struct Sweep {
    window_ms: u64,
}

const FULL: Sweep = Sweep { window_ms: 300 };
// Smoke trims only the timing window: the traces, arms and gates are
// identical, so the CI smoke run exercises the exact committed
// scenario and its rows stay comparable at the same trace length.
const SMOKE: Sweep = Sweep { window_ms: 30 };

/// Trace length: 32 generator batches x 64 samples = 2048 requests
/// per arm, i.e. four full rotations at `ROT_REQUESTS`.
const TRACE_BATCHES: usize = 32;

#[derive(serde::Serialize)]
struct Row {
    /// Arm name (the baseline key).
    arm: String,
    offered_qps: f64,
    achieved_qps: f64,
    completed: u64,
    batches: u64,
    mean_batch_size: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    /// p99 relative to the steady-replan arm.
    p99_vs_steady: f64,
    replans_triggered: u64,
    replans_skipped: u64,
    migrations_completed: u64,
    rows_moved: u64,
    migrated_kb: f64,
    migration_us: f64,
    /// Wall time per offered request around engine build + run (the
    /// software cost this bench tracks across PRs).
    measured_ns_per_request: f64,
    /// ns/request of the carried baseline row, 0.0 when none matched.
    baseline_ns_per_request: f64,
    /// baseline / measured; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn drift(num_sets: usize, period_ns: u64) -> DriftSchedule {
    DriftSchedule {
        rotation: Some(HotSetRotation {
            num_sets,
            set_size: SET_SIZE,
            period_ns,
            hot_fraction: HOT_FRACTION,
        }),
        spikes: Vec::new(),
        diurnal: None,
    }
}

fn gen_sched(spec: &DatasetSpec, schedule: DriftSchedule, qps: f64) -> Workload {
    Workload::generate_drifting(
        spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches: TRACE_BATCHES,
            ..TraceConfig::default()
        },
        schedule,
        ArrivalProcess::poisson(qps, ARRIVAL_SEED),
    )
}

fn gen(spec: &DatasetSpec, num_sets: usize, period_ns: u64, qps: f64) -> Workload {
    gen_sched(spec, drift(num_sets, period_ns), qps)
}

/// All three arms deploy the same naive uniform partition; only
/// `replan` differs. The replanner's first refit upgrades it to a
/// frequency-balanced placement, the static arm keeps it forever.
fn engine(
    tables: &[EmbeddingTable],
    deploy: &Workload,
    strategy: PartitionStrategy,
    replan: bool,
) -> UpdlrmEngine {
    let mut config = UpdlrmConfig::with_dpus(NR_DPUS, strategy)
        .with_host_threads(1)
        .with_telemetry();
    if replan {
        config = config.with_replan(ReplanPolicy::Periodic {
            every_batches: REPLAN_EVERY,
        });
    }
    config.batch_size = MAX_BATCH;
    UpdlrmEngine::from_workload(config, tables, deploy).expect("engine builds")
}

fn sched() -> Scheduler {
    Scheduler::new(SchedConfig {
        max_batch_size: MAX_BATCH,
        max_wait_ns: MAX_WAIT_NS,
        queue_cap: QUEUE_CAP,
        // Block, not shed: under a stale placement the queue backs up
        // and the backlog lands in the latency histogram instead of
        // being quietly dropped.
        policy: OverloadPolicy::Block,
    })
    .expect("valid config")
}

/// One arm, fresh engine (replanning mutates placement, so engines
/// are single-use). Returns the report and the drift counters.
fn run_arm(
    tables: &[EmbeddingTable],
    deploy: &Workload,
    wl: &Workload,
    strategy: PartitionStrategy,
    replan: bool,
) -> (SchedReport, DriftSnapshot) {
    let mut eng = engine(tables, deploy, strategy, replan);
    let report = sched().run(&mut eng, wl, |_, _, _, _| {}).expect("runs");
    (report, eng.metrics_snapshot().drift)
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// arm -> measured ns/request, hand-parsed so schema drift across PRs
/// never breaks reading old files.
fn parse_rows(rows: &Value) -> Vec<(String, f64)> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let Value::Str(arm) = r.get("arm")? else {
                return None;
            };
            let ns = num(r.get("measured_ns_per_request")?)?;
            Some((arm.clone(), ns))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_drift.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    // Cargo runs bench binaries from the package directory, so resolve
    // relative paths against the repo root — CI passes plain
    // `BENCH_drift.json` and means the committed file.
    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    // In check mode a missing or malformed baseline is a failure, not
    // a free pass — CI relies on this to keep the committed trajectory
    // file honest.
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };

    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let tables: Vec<EmbeddingTable> = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();

    // Capacity probe: steady traffic offered far above anything
    // serveable to a frequency-balanced engine; back-to-back full
    // batches make achieved QPS the balanced service capacity — the
    // reference the load fraction is set against.
    let probe_wl = gen(&spec, 1, u64::MAX, 1e9);
    let (probe, _) = run_arm(
        &tables,
        &probe_wl,
        &probe_wl,
        PartitionStrategy::NonUniform,
        false,
    );
    let capacity_qps = probe.achieved_qps;
    let offered = capacity_qps * LOAD_FRAC;
    let period_ns = (ROT_REQUESTS / offered * 1e9) as u64;
    println!(
        "drift sweep: {NUM_TABLES} tables x {NR_DPUS} DPUs, goodreads/2000, \
         {NUM_SETS}x{SET_SIZE} hot sets @ {HOT_FRACTION} hot, balanced capacity {capacity_qps:.0} qps, \
         offering {offered:.0} qps, rotating every {:.1} ms{}",
        period_ns as f64 / 1e6,
        if smoke { " (smoke)" } else { "" }
    );

    // The deployment-time trace the engines are fit to, and the two
    // serving traces. Steady = the same geometry with the rotation
    // pinned to set 0.
    let deploy_wl = gen(&spec, 1, u64::MAX, offered);
    let steady_wl = deploy_wl.clone();
    let rotate_wl = gen(&spec, NUM_SETS, period_ns, offered);

    // The offered trace span anchors the spike window and the diurnal
    // period, so both scenarios scale with the probed capacity the
    // same way the rotation period does.
    let span_ns = *steady_wl.arrivals.times_ns.last().expect("non-empty trace");
    let spike_sched = DriftSchedule {
        rotation: Some(HotSetRotation {
            num_sets: 1,
            set_size: SET_SIZE,
            period_ns: u64::MAX,
            hot_fraction: HOT_FRACTION,
        }),
        spikes: vec![FlashCrowd {
            start_ns: span_ns / 4,
            duration_ns: span_ns / 2,
            target_set: SPIKE_TARGET_SET,
            extra_hot: SPIKE_EXTRA_HOT,
            rate_boost: 1.0,
        }],
        diurnal: None,
    };
    let diurnal_sched = DriftSchedule {
        diurnal: Some(DiurnalCurve {
            period_ns: (span_ns as f64 / DIURNAL_CYCLES) as u64,
            amplitude: DIURNAL_AMPLITUDE,
        }),
        ..drift(NUM_SETS, period_ns)
    };
    let spike_wl = gen_sched(&spec, spike_sched, offered);
    let diurnal_wl = gen_sched(&spec, diurnal_sched, offered);

    let arms: [(&str, &Workload, bool); 7] = [
        ("steady-replan", &steady_wl, true),
        ("rotate-replan", &rotate_wl, true),
        ("rotate-static", &rotate_wl, false),
        ("spike-replan", &spike_wl, true),
        ("spike-static", &spike_wl, false),
        ("diurnal-rotate-replan", &diurnal_wl, true),
        ("diurnal-rotate-static", &diurnal_wl, false),
    ];

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut results: Vec<(&str, SchedReport, DriftSnapshot)> = Vec::new();
    for (arm, wl, replan) in arms {
        // Determinism identity before anything is timed: the whole
        // serving path — including mid-stream migration — runs on
        // modeled time only, so two runs agree exactly.
        let (report, dsnap) = run_arm(&tables, &deploy_wl, wl, PartitionStrategy::Uniform, replan);
        let (report_b, dsnap_b) =
            run_arm(&tables, &deploy_wl, wl, PartitionStrategy::Uniform, replan);
        assert_eq!(report, report_b, "{arm}: reports differ across runs");
        assert_eq!(dsnap, dsnap_b, "{arm}: drift counters differ across runs");

        let m = timing::run_with_window(&format!("drift/{arm}"), sweep.window_ms, || {
            black_box(run_arm(
                black_box(&tables),
                black_box(&deploy_wl),
                black_box(wl),
                PartitionStrategy::Uniform,
                replan,
            ));
        });
        let measured = m.mean_ns / report.requests as f64;
        let base = baseline_rows
            .iter()
            .find(|(a, _)| a == arm)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0);
        let speedup = if base > 0.0 { base / measured } else { 0.0 };
        println!(
            "  {arm:<14} achieved {:>8.0} qps  p50 {:>8.1} us  p99 {:>9.1} us  \
             replans {:>2} ({} skipped)  migrations {:>2}  {measured:>7.1} ns/request{}",
            report.achieved_qps,
            report.p50_latency_ns / 1e3,
            report.p99_latency_ns / 1e3,
            dsnap.replans_triggered,
            dsnap.replans_skipped,
            dsnap.migrations_completed,
            if base > 0.0 {
                format!("  {speedup:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured > base * 1.20 {
            regressions.push(format!(
                "{arm}: {measured:.1} ns/request vs baseline {base:.1} (+{:.0}%)",
                (measured / base - 1.0) * 100.0
            ));
        }
        rows.push(Row {
            arm: arm.to_string(),
            offered_qps: offered,
            achieved_qps: report.achieved_qps,
            completed: report.completed,
            batches: report.batches,
            mean_batch_size: report.mean_batch_size,
            p50_latency_us: report.p50_latency_ns / 1e3,
            p99_latency_us: report.p99_latency_ns / 1e3,
            p99_vs_steady: 0.0, // filled below once the baseline arm is known
            replans_triggered: dsnap.replans_triggered,
            replans_skipped: dsnap.replans_skipped,
            migrations_completed: dsnap.migrations_completed,
            rows_moved: dsnap.rows_moved,
            migrated_kb: dsnap.migrated_bytes as f64 / 1024.0,
            migration_us: dsnap.migration_ns / 1e3,
            measured_ns_per_request: measured,
            baseline_ns_per_request: base,
            speedup_vs_baseline: speedup,
        });
        results.push((arm, report, dsnap));
    }

    // The drift-resilience gate, asserted on modeled time: every
    // drifting replan arm holds p99 within GATE_RATIO of steady, and
    // every static control exceeds it (anti-vacuous).
    let at = |arm: &str| results.iter().find(|(a, _, _)| *a == arm).unwrap();
    let steady = &at("steady-replan").1;
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (arm, rep, dsnap) in &results {
        if *arm == "steady-replan" {
            continue;
        }
        let ratio = rep.p99_latency_ns / steady.p99_latency_ns;
        ratios.push((arm.to_string(), ratio));
        if arm.ends_with("-static") {
            assert_eq!(
                *dsnap,
                DriftSnapshot::default(),
                "{arm}: static control must not replan"
            );
            assert!(
                ratio > GATE_RATIO,
                "anti-vacuous gate: the {arm} control only degraded to \
                 {ratio:.2}x steady — the scenario no longer stresses placement"
            );
        } else {
            assert!(
                dsnap.migrations_completed >= 1 && dsnap.rows_moved > 0,
                "{arm} never migrated — the gate would be vacuous: {dsnap:?}"
            );
            assert!(
                ratio <= GATE_RATIO,
                "drift-resilience gate: p99 of {arm} is {ratio:.2}x steady \
                 (limit {GATE_RATIO}x)"
            );
        }
    }
    for row in &mut rows {
        row.p99_vs_steady = ratios
            .iter()
            .find(|(a, _)| *a == row.arm)
            .map_or(1.0, |(_, r)| *r);
    }
    let gate_line = ratios
        .iter()
        .map(|(a, r)| format!("{a} {r:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "gate: p99 vs steady — {gate_line} (replan arms <= {GATE_RATIO}, \
         static controls > {GATE_RATIO})"
    );

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >20% ns/request regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("drift_sweep".into())),
        ("dataset".into(), Value::Str("goodreads/2000".into())),
        ("nr_dpus".into(), Value::UInt(NR_DPUS as u64)),
        ("num_tables".into(), Value::UInt(NUM_TABLES as u64)),
        ("dim".into(), Value::UInt(DIM as u64)),
        ("max_batch".into(), Value::UInt(MAX_BATCH as u64)),
        ("num_sets".into(), Value::UInt(NUM_SETS as u64)),
        ("set_size".into(), Value::UInt(SET_SIZE as u64)),
        ("hot_fraction".into(), Value::Float(HOT_FRACTION)),
        ("load_frac".into(), Value::Float(LOAD_FRAC)),
        ("replan_every_batches".into(), Value::UInt(REPLAN_EVERY)),
        ("rotation_period_ns".into(), Value::UInt(period_ns)),
        ("capacity_qps".into(), Value::Float(capacity_qps)),
        ("offered_qps".into(), Value::Float(offered)),
        (
            "spike_target_set".into(),
            Value::UInt(SPIKE_TARGET_SET as u64),
        ),
        ("spike_extra_hot".into(), Value::Float(SPIKE_EXTRA_HOT)),
        ("diurnal_cycles".into(), Value::Float(DIURNAL_CYCLES)),
        ("diurnal_amplitude".into(), Value::Float(DIURNAL_AMPLITUDE)),
        ("gate_ratio".into(), Value::Float(GATE_RATIO)),
        (
            "p99_vs_steady".into(),
            Value::Object(
                ratios
                    .iter()
                    .map(|(a, r)| (a.clone(), Value::Float(*r)))
                    .collect(),
            ),
        ),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
