//! Noisy-neighbor bench: a steady victim tenant sharing one modeled
//! DPU fleet with a bursty adversary (DESIGN.md §4.12).
//!
//! Three arms serve the same victim trace:
//!
//! * `victim-solo` — the victim alone on the fleet. This arm defines
//!   the p99 baseline and the pooled-embedding bit stream that the
//!   shared arms must reproduce exactly.
//! * `duo-drr` — victim + adversary under weighted deficit round
//!   robin (the default isolation discipline; the victim carries
//!   double weight).
//! * `duo-fcfs` — same pair with arbitration off (global FCFS): the
//!   adversary's bursts walk straight into the victim's latency.
//!
//! Asserted on modeled time (the tenant-isolation gate CI runs):
//!
//! 1. p99(duo-drr victim) / p99(victim-solo) <= 1.5 — DRR bounds the
//!    noisy neighbor's damage;
//! 2. p99(duo-fcfs victim) / p99(victim-solo) > 1.5 — without
//!    arbitration the victim really degrades, so gate 1 is not
//!    vacuously true;
//! 3. the victim's pooled embeddings are bit-identical in all three
//!    arms (content isolation), the adversary actually sheds load
//!    (it is genuinely overloaded), and two runs of each arm
//!    serialize byte-identically.
//!
//! The *measured* number tracked across PRs is wall time per offered
//! request around fleet build + `TenantFleet::run`. It lands in
//! `BENCH_tenants.json` at the repo root. Flags (same protocol as
//! `drift_sweep`):
//!
//! * `--smoke` — short timing window, same traces and gates
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >20% ns/request regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use std::hint::black_box;

use bench::timing;
use serde::Value;
use tenancy::{Arbitration, ArrivalKind, FleetConfig, FleetReport, TenantFleet, TenantSpec};

const FLEET_DPUS: usize = 16;
const QUANTUM_NS: u64 = 100_000;
/// The isolation gate: with DRR on, the adversary must not push the
/// victim's p99 beyond this factor of solo serving; with FCFS it must.
const GATE_RATIO: f64 = 1.5;

struct Sweep {
    window_ms: u64,
}

const FULL: Sweep = Sweep { window_ms: 300 };
// Smoke trims only the timing window: traces, arms and gates are
// identical, so CI exercises the exact committed scenario.
const SMOKE: Sweep = Sweep { window_ms: 30 };

/// Steady Poisson tenant with double arbitration weight. Its 500 us
/// batching window keeps batches full at 10k qps.
fn victim() -> TenantSpec {
    TenantSpec {
        name: "victim".into(),
        qps: 10_000.0,
        num_batches: 10,
        max_wait_us: 500,
        weight: 2.0,
        seed: 11,
        ..TenantSpec::default()
    }
}

/// Bursty adversary offered 3x the victim's rate in 4x bursts — far
/// past its fleet share, so it sheds. `max_batch` 8 caps the
/// non-preemptible service quantum it can occupy the fleet with.
fn adversary() -> TenantSpec {
    TenantSpec {
        name: "adversary".into(),
        qps: 30_000.0,
        arrival: ArrivalKind::Bursty,
        num_batches: 30,
        max_wait_us: 200,
        max_batch: 8,
        weight: 1.0,
        seed: 12,
        ..TenantSpec::default()
    }
}

fn fleet_cfg(arbitration: Arbitration) -> FleetConfig {
    FleetConfig {
        fleet_dpus: FLEET_DPUS,
        quantum_ns: QUANTUM_NS,
        arbitration,
        telemetry: false,
        ..FleetConfig::default()
    }
}

/// One arm: fresh fleet (serving mutates engine state), returning the
/// report and the victim's pooled-embedding bit stream.
fn run_arm(specs: &[TenantSpec], arbitration: Arbitration) -> (FleetReport, Vec<u32>) {
    let mut fleet = TenantFleet::from_specs(specs, fleet_cfg(arbitration)).expect("fleet builds");
    let mut bits = Vec::new();
    let report = fleet
        .run(|tenant, _, _, pooled, _| {
            if tenant == 0 {
                for m in pooled {
                    bits.extend(m.as_slice().iter().map(|v| v.to_bits()));
                }
            }
        })
        .expect("fleet runs");
    (report, bits)
}

#[derive(serde::Serialize)]
struct Row {
    /// Arm name (the baseline key).
    arm: String,
    victim_offered_qps: f64,
    victim_achieved_qps: f64,
    victim_completed: u64,
    victim_p50_latency_us: f64,
    victim_p99_latency_us: f64,
    /// Victim p99 relative to the victim-solo arm.
    victim_p99_vs_solo: f64,
    adversary_shed: u64,
    fleet_utilization: f64,
    /// Wall time per offered request around fleet build + run (the
    /// software cost this bench tracks across PRs).
    measured_ns_per_request: f64,
    /// ns/request of the carried baseline row, 0.0 when none matched.
    baseline_ns_per_request: f64,
    /// baseline / measured; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// arm -> measured ns/request, hand-parsed so schema drift across PRs
/// never breaks reading old files.
fn parse_rows(rows: &Value) -> Vec<(String, f64)> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let Value::Str(arm) = r.get("arm")? else {
                return None;
            };
            let ns = num(r.get("measured_ns_per_request")?)?;
            Some((arm.clone(), ns))
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_tenants.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };

    let solo = [victim()];
    let duo = [victim(), adversary()];
    let arms: [(&str, &[TenantSpec], Arbitration); 3] = [
        ("victim-solo", &solo, Arbitration::Drr),
        ("duo-drr", &duo, Arbitration::Drr),
        ("duo-fcfs", &duo, Arbitration::Fcfs),
    ];
    println!(
        "tenants bench: victim 10k qps poisson (weight 2) vs adversary 30k qps bursty, \
         {FLEET_DPUS} DPUs, quantum {} us{}",
        QUANTUM_NS / 1000,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut results: Vec<(&str, FleetReport, Vec<u32>)> = Vec::new();
    for (arm, specs, arbitration) in arms {
        // Determinism identity before anything is timed: the whole
        // fleet — batch formation, arbitration, telemetry — runs on
        // modeled time only, so two runs serialize byte-identically.
        let (report, bits) = run_arm(specs, arbitration);
        let (report_b, bits_b) = run_arm(specs, arbitration);
        assert_eq!(
            serde::json::to_string_pretty(&report),
            serde::json::to_string_pretty(&report_b),
            "{arm}: reports differ across runs"
        );
        assert_eq!(bits, bits_b, "{arm}: embedding bits differ across runs");

        let requests: u64 = report.tenants.iter().map(|t| t.sched.requests).sum();
        let m = timing::run_with_window(&format!("tenants/{arm}"), sweep.window_ms, || {
            black_box(run_arm(black_box(specs), arbitration));
        });
        let measured = m.mean_ns / requests as f64;
        let base = baseline_rows
            .iter()
            .find(|(a, _)| a == arm)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0);
        let speedup = if base > 0.0 { base / measured } else { 0.0 };
        let v = &report.tenants[0].sched;
        println!(
            "  {arm:<12} victim p50 {:>7.1} us  p99 {:>8.1} us  completed {:>5}  \
             util {:.2}  {measured:>7.1} ns/request{}",
            v.p50_latency_ns / 1e3,
            v.p99_latency_ns / 1e3,
            v.completed,
            report.fleet_utilization,
            if base > 0.0 {
                format!("  {speedup:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured > base * 1.20 {
            regressions.push(format!(
                "{arm}: {measured:.1} ns/request vs baseline {base:.1} (+{:.0}%)",
                (measured / base - 1.0) * 100.0
            ));
        }
        rows.push(Row {
            arm: arm.to_string(),
            victim_offered_qps: v.offered_qps,
            victim_achieved_qps: v.achieved_qps,
            victim_completed: v.completed,
            victim_p50_latency_us: v.p50_latency_ns / 1e3,
            victim_p99_latency_us: v.p99_latency_ns / 1e3,
            victim_p99_vs_solo: 0.0, // filled below once solo is known
            adversary_shed: report.tenants.get(1).map_or(0, |t| t.sched.shed),
            fleet_utilization: report.fleet_utilization,
            measured_ns_per_request: measured,
            baseline_ns_per_request: base,
            speedup_vs_baseline: speedup,
        });
        results.push((arm, report, bits));
    }

    // The tenant-isolation gate, asserted on modeled time.
    let at = |arm: &str| results.iter().find(|(a, _, _)| *a == arm).unwrap();
    let (_, solo_rep, solo_bits) = at("victim-solo");
    let (_, drr_rep, drr_bits) = at("duo-drr");
    let (_, fcfs_rep, fcfs_bits) = at("duo-fcfs");
    let solo_p99 = solo_rep.tenants[0].sched.p99_latency_ns;
    let ratio_drr = drr_rep.tenants[0].sched.p99_latency_ns / solo_p99;
    let ratio_fcfs = fcfs_rep.tenants[0].sched.p99_latency_ns / solo_p99;
    for row in &mut rows {
        row.victim_p99_vs_solo = match row.arm.as_str() {
            "duo-drr" => ratio_drr,
            "duo-fcfs" => ratio_fcfs,
            _ => 1.0,
        };
    }
    println!(
        "gate: victim p99 duo-drr {ratio_drr:.2}x solo (<= {GATE_RATIO} required), \
         duo-fcfs {ratio_fcfs:.2}x (> {GATE_RATIO} required)"
    );
    assert_eq!(
        solo_bits, drr_bits,
        "content isolation broken: duo-drr victim embeddings differ from solo"
    );
    assert_eq!(
        solo_bits, fcfs_bits,
        "content isolation broken: duo-fcfs victim embeddings differ from solo"
    );
    for (arm, rep, _) in [at("duo-drr"), at("duo-fcfs")] {
        assert!(
            rep.tenants[1].sched.shed > 0,
            "{arm}: the adversary never shed — it is not actually overloaded"
        );
    }
    assert!(
        ratio_drr <= GATE_RATIO,
        "tenant-isolation gate: DRR let the noisy neighbor push the victim's \
         p99 to {ratio_drr:.2}x solo (limit {GATE_RATIO}x)"
    );
    assert!(
        ratio_fcfs > GATE_RATIO,
        "anti-vacuous gate: without arbitration the victim only degraded to \
         {ratio_fcfs:.2}x solo — the adversary no longer stresses the fleet"
    );

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >20% ns/request regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("tenants".into())),
        ("fleet_dpus".into(), Value::UInt(FLEET_DPUS as u64)),
        ("quantum_ns".into(), Value::UInt(QUANTUM_NS)),
        ("gate_ratio".into(), Value::Float(GATE_RATIO)),
        ("victim_p99_ratio_drr".into(), Value::Float(ratio_drr)),
        ("victim_p99_ratio_fcfs".into(), Value::Float(ratio_fcfs)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
