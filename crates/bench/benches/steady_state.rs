//! Steady-state serving throughput: simulator ns/sample across batch
//! size × pipeline mode.
//!
//! Unlike `pipeline_serve` (which reports the *modeled* walls), this
//! bench measures the *simulator's own* wall clock around repeated
//! `UpdlrmEngine::serve` calls on one engine — the number that the
//! zero-allocation scratch-arena and SIMD kernel work moves. Four
//! identities are asserted on every f32 configuration before anything
//! is timed:
//!
//! 1. every pooled row equals the ground-truth
//!    `EmbeddingTable::partial_sum` bit-for-bit (integer tables);
//! 2. serve output is bit-identical to back-to-back `run_batch` calls
//!    on a fresh engine;
//! 3. the executed wall equals the analytic model
//!    (`pipelined_wall_ns` / `sequential_wall_ns`) bit-for-bit;
//! 4. serve output under the detected SIMD tier is bit-identical to a
//!    forced-scalar serve (the `bit_identical` column records this).
//!
//! The embedding tables are generated once, written to the packed
//! on-disk format (`workloads::pack`), and mmap-loaded back per sweep
//! point — the measured load wall of the first point is reported as a
//! `coldstart` row (its `measured_ns_per_sample` is the *total* load
//! ns; it never participates in regression gating). One `int8` EMT
//! configuration rides along and must model a strictly smaller stage-2
//! than its f32 twin.
//!
//! Results land in `BENCH_steady_state.json` at the repo root. A
//! previously committed file's rows are carried forward as
//! `baseline_rows` (label via `--baseline-label`), so the perf
//! trajectory accumulates across PRs. Every row records the SIMD tier
//! (`simd`) and EMT dtype (`embed_dtype`) it measured; baseline rows
//! only gate rows with the same tier and dtype (rows from before these
//! fields existed match any). Flags:
//!
//! * `--smoke` — tiny sweep (batch 16, 3 batches, short window)
//! * `--check FILE` — compare against FILE's rows; exit nonzero on a
//!   >20% ns/sample regression; do not write output
//! * `--baseline-label S` — label adopted rows when FILE had no baseline
//! * `--out FILE` — output path (default: repo-root JSON)

use std::hint::black_box;
use std::time::Instant;

use bench::timing;
use dlrm_model::{simd, EmbedDtype, EmbeddingTable};
use serde::Value;
use updlrm_core::{
    pipelined_wall_ns, sequential_wall_ns, PartitionStrategy, PipelineMode, UpdlrmConfig,
    UpdlrmEngine,
};
use workloads::pack::{save_packed, PackedTables};
use workloads::{DatasetSpec, TraceConfig, Workload};

const NUM_TABLES: usize = 4;
const NR_DPUS: usize = 64;
const DIM: usize = 32;

struct Sweep {
    batch_sizes: &'static [usize],
    num_batches: usize,
    window_ms: u64,
}

const FULL: Sweep = Sweep {
    batch_sizes: &[16, 64, 256],
    num_batches: 8,
    window_ms: 300,
};
const SMOKE: Sweep = Sweep {
    batch_sizes: &[16],
    num_batches: 3,
    window_ms: 30,
};

#[derive(serde::Serialize)]
struct Row {
    batch_size: usize,
    mode: String,
    batches: usize,
    samples_per_serve: usize,
    /// Simulator wall clock per sample (the software cost this bench
    /// tracks across PRs). For the `coldstart` row this is the total
    /// packed-table mmap-load wall instead.
    measured_ns_per_sample: f64,
    /// Modeled hardware time per sample (`ServeReport::wall_ns`).
    modeled_ns_per_sample: f64,
    /// Modeled host share: (route + combine) / total_with_host.
    host_overhead_share: f64,
    /// Serve output under the detected SIMD tier was bit-identical to
    /// a forced-scalar serve of the same workload.
    bit_identical: bool,
    /// Runtime-dispatched SIMD tier this row measured (`scalar`,
    /// `sse2`, `avx2`, `avx512`, `neon`).
    simd: String,
    /// EMT storage dtype this row measured (`f32` or `int8`).
    embed_dtype: String,
    /// Modeled stage-1 (CPU→MRAM scatter) time per sample (ns).
    stage1_ns_per_sample: f64,
    /// Modeled stage-2 (DPU kernel) time per sample (ns).
    stage2_ns_per_sample: f64,
    /// Modeled stage-3 (MRAM→CPU gather) time per sample (ns).
    stage3_ns_per_sample: f64,
    /// Measured simulator-wall cost of enabling telemetry, percent
    /// (telemetry-on ns/sample over telemetry-off, minus one). Reported
    /// for visibility — the ≤2% budget is asserted statistically by the
    /// snapshot job, not gated here, because a single window is noisy.
    telemetry_overhead_pct: f64,
    /// ns/sample of the carried baseline row, 0.0 when none matched.
    baseline_ns_per_sample: f64,
    /// baseline / measured; 0.0 when no baseline row matched.
    speedup_vs_baseline: f64,
}

fn dataset_spec() -> DatasetSpec {
    DatasetSpec::goodreads().scaled_down(2000)
}

fn build_tables() -> Vec<EmbeddingTable> {
    let spec = dataset_spec();
    (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect()
}

fn build_workload(batch_size: usize, num_batches: usize) -> Workload {
    Workload::generate(
        &dataset_spec(),
        TraceConfig {
            num_tables: NUM_TABLES,
            batch_size,
            num_batches,
            ..TraceConfig::default()
        },
    )
}

fn engine(
    mode: PipelineMode,
    tables: &[EmbeddingTable],
    workload: &Workload,
    telemetry: bool,
    dtype: EmbedDtype,
) -> UpdlrmEngine {
    let batch_size = workload.config.batch_size;
    let mut config = UpdlrmConfig::with_dpus(NR_DPUS, PartitionStrategy::CacheAware)
        .with_pipeline_mode(mode)
        .with_queue_depth(2)
        .with_embed_dtype(dtype);
    // MRAM staging slots are sized for `config.batch_size` samples.
    config.batch_size = batch_size;
    config.telemetry = telemetry;
    UpdlrmEngine::from_workload(config, tables, workload).expect("engine builds")
}

/// Asserts identities 1–3 documented in the module docs (f32 only —
/// int8 EMT rows are quantized, so ground truth is approximate there).
fn assert_bit_identity(
    mode: PipelineMode,
    tables: &[EmbeddingTable],
    workload: &Workload,
    outcome: &updlrm_core::ServeOutcome,
) {
    // 1. ground truth: pooled rows are exact partial sums.
    for (i, batch) in workload.batches.iter().enumerate() {
        for (t, table) in tables.iter().enumerate() {
            let pooled = &outcome.pooled[i][t];
            for s in 0..batch.batch_size() {
                let expect = table.partial_sum(batch.sparse[t].sample(s)).expect("sum");
                let got = pooled.row(s);
                assert_eq!(got.len(), expect.len());
                for (g, e) in got.iter().zip(expect.iter()) {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "pooled departs from ground truth (batch {i}, table {t}, sample {s})"
                    );
                }
            }
        }
    }
    // 2. differential vs back-to-back run_batch on a fresh engine.
    let mut fresh = engine(mode, tables, workload, false, EmbedDtype::F32);
    for (i, batch) in workload.batches.iter().enumerate() {
        let (pooled, bd) = fresh.run_batch(batch).expect("run_batch");
        assert_eq!(pooled, outcome.pooled[i], "pooled departs from run_batch");
        let sbd = &outcome.breakdowns[i];
        assert_eq!(bd.stage2_ns.to_bits(), sbd.stage2_ns.to_bits());
        assert_eq!(bd.route_ns.to_bits(), sbd.route_ns.to_bits());
        assert_eq!(bd.combine_ns.to_bits(), sbd.combine_ns.to_bits());
    }
    // 3. executed wall equals the analytic model.
    let model = match mode {
        PipelineMode::DoubleBuf => pipelined_wall_ns(&outcome.breakdowns),
        PipelineMode::Sequential => sequential_wall_ns(&outcome.breakdowns),
    };
    assert_eq!(
        outcome.report.wall_ns.to_bits(),
        model.to_bits(),
        "executed wall departed from the model"
    );
}

/// Identity 4: a forced-scalar serve of the same engine configuration
/// produces bit-identical pooled rows and modeled wall. Returns `true`
/// (it asserts on divergence) so the row records a checked value.
fn assert_scalar_identity(
    mode: PipelineMode,
    tables: &[EmbeddingTable],
    workload: &Workload,
    dtype: EmbedDtype,
    outcome: &updlrm_core::ServeOutcome,
) -> bool {
    simd::force_tier(Some(simd::SimdTier::Scalar));
    let mut eng = engine(mode, tables, workload, false, dtype);
    let scalar = eng.serve(&workload.batches).expect("serves");
    simd::force_tier(None);
    assert_eq!(
        scalar.report.wall_ns.to_bits(),
        outcome.report.wall_ns.to_bits(),
        "modeled wall depends on SIMD tier"
    );
    for (i, (sp, op)) in scalar.pooled.iter().zip(outcome.pooled.iter()).enumerate() {
        for (t, (sm, om)) in sp.iter().zip(op.iter()).enumerate() {
            assert_eq!(sm.rows(), om.rows());
            for s in 0..sm.rows() {
                for (a, b) in sm.row(s).iter().zip(om.row(s).iter()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "SIMD tier {} departs from scalar (batch {i}, table {t}, sample {s})",
                        simd::tier_name()
                    );
                }
            }
        }
    }
    true
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// One baseline row, hand-parsed so schema drift across PRs never
/// breaks reading old files. `simd`/`embed_dtype` are `None` for rows
/// written before those fields existed — they match any current row.
struct BaseRow {
    batch_size: usize,
    mode: String,
    ns: f64,
    simd: Option<String>,
    embed_dtype: Option<String>,
}

fn parse_rows(rows: &Value) -> Vec<BaseRow> {
    let Value::Array(rows) = rows else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let batch_size = num(r.get("batch_size")?)? as usize;
            let mode = match r.get("mode")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            let ns = num(r.get("measured_ns_per_sample")?)?;
            let text = |k: &str| match r.get(k) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            };
            Some(BaseRow {
                batch_size,
                mode,
                ns,
                simd: text("simd"),
                embed_dtype: text("embed_dtype"),
            })
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut baseline_label = "previous run".to_string();
    let default_out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_steady_state.json")
        .to_string_lossy()
        .into_owned();
    let mut out_path = default_out;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().expect("--check needs a file")),
            "--baseline-label" => {
                baseline_label = args.next().expect("--baseline-label needs a value")
            }
            "--out" => out_path = args.next().expect("--out needs a file"),
            "--bench" => {} // passed by `cargo bench`
            other => eprintln!("ignoring unknown arg {other}"),
        }
    }
    let sweep = if smoke { SMOKE } else { FULL };

    // Cargo runs bench binaries from the package directory, so resolve
    // relative paths against the repo root — CI passes plain
    // `BENCH_steady_state.json` and means the committed file.
    let rooted = |p: String| {
        if std::path::Path::new(&p).is_relative() {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&p)
                .to_string_lossy()
                .into_owned()
        } else {
            p
        }
    };
    let check = check.map(rooted);
    let out_path = rooted(out_path);

    // Baseline: from --check FILE, else from the existing output file.
    let baseline_src = check.clone().unwrap_or_else(|| out_path.clone());
    let old: Option<Value> = std::fs::read_to_string(&baseline_src)
        .ok()
        .and_then(|s| serde::json::from_str(&s).ok());
    // In check mode a missing or malformed baseline is a failure, not a
    // free pass — CI relies on this to keep the committed trajectory
    // file honest.
    if check.is_some() {
        let usable = old
            .as_ref()
            .and_then(|v| v.get("rows"))
            .map(parse_rows)
            .is_some_and(|rows| !rows.is_empty());
        if !usable {
            eprintln!("check: baseline {baseline_src} is missing, malformed, or has no rows");
            std::process::exit(1);
        }
    }
    // Prefer the file's own measured rows (they describe the committed
    // code); fall back to its carried baseline only if rows are absent.
    let (baseline_rows, baseline_value, label) = match &old {
        Some(v) => {
            let rows = v.get("rows").map(parse_rows).unwrap_or_default();
            if rows.is_empty() {
                (Vec::new(), None, baseline_label.clone())
            } else {
                (rows, v.get("rows").cloned(), baseline_label.clone())
            }
        }
        None => (Vec::new(), None, baseline_label.clone()),
    };
    let simd_tier = simd::tier_name().to_string();
    // A baseline row gates only rows of the same tier and dtype.
    // Rows predating the `simd` field match any tier (the carried
    // history stays meaningful); rows predating `embed_dtype` measured
    // f32, so they gate only f32 rows. Coldstart rows never match a
    // serve row's mode.
    let find_base = |batch_size: usize, mode: &str, dtype: &str| -> f64 {
        baseline_rows
            .iter()
            .find(|r| {
                r.batch_size == batch_size
                    && r.mode == mode
                    && r.simd.as_deref().is_none_or(|s| s == simd_tier)
                    && r.embed_dtype.as_deref().unwrap_or("f32") == dtype
            })
            .map(|r| r.ns)
            .unwrap_or(0.0)
    };

    println!(
        "steady-state sweep: {NUM_TABLES} tables x {NR_DPUS} DPUs, goodreads/2000, \
         {} batches/serve, simd {simd_tier}{}",
        sweep.num_batches,
        if smoke { " (smoke)" } else { "" }
    );

    // Tables are generated once, packed, and mmap-loaded per sweep
    // point; the first load's wall is the reported cold start.
    let pack_path = std::env::temp_dir().join(format!(
        "updlrm_steady_state_tables_{}.uptb",
        std::process::id()
    ));
    save_packed(&build_tables(), &pack_path).expect("pack tables");
    let load_tables = || -> (Vec<EmbeddingTable>, f64) {
        let t0 = Instant::now();
        let packed = PackedTables::open(&pack_path).expect("open packed tables");
        let tables = packed
            .views()
            .iter()
            .map(|v| EmbeddingTable::from_view(v).expect("decode table"))
            .collect();
        (tables, t0.elapsed().as_nanos() as f64)
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut regressions = Vec::new();
    let mut coldstart_ns = None;
    let measure = |rows: &mut Vec<Row>,
                   regressions: &mut Vec<String>,
                   tables: &[EmbeddingTable],
                   batch_size: usize,
                   mode: PipelineMode,
                   dtype: EmbedDtype| {
        let workload = build_workload(batch_size, sweep.num_batches);
        let samples = batch_size * sweep.num_batches;
        let dtype_name = match dtype {
            EmbedDtype::F32 => "f32",
            EmbedDtype::Int8 => "int8",
        };
        let mut eng = engine(mode, tables, &workload, false, dtype);
        let outcome = eng.serve(&workload.batches).expect("serves");
        if dtype == EmbedDtype::F32 {
            assert_bit_identity(mode, tables, &workload, &outcome);
        }
        let bit_identical = assert_scalar_identity(mode, tables, &workload, dtype, &outcome);

        let label_name = format!("serve/b{batch_size}/{mode}/{dtype_name}");
        let m = timing::run_with_window(&label_name, sweep.window_ms, || {
            black_box(eng.serve(black_box(&workload.batches)).expect("serves"));
        });
        // Telemetry-enabled twin in the same window: its modeled
        // outputs are identical, so the ns/sample delta is the pure
        // recording cost.
        let mut eng_tel = engine(mode, tables, &workload, true, dtype);
        eng_tel.serve(&workload.batches).expect("serves");
        let m_tel = timing::run_with_window(&format!("{label_name}/tel"), sweep.window_ms, || {
            black_box(eng_tel.serve(black_box(&workload.batches)).expect("serves"));
        });
        let telemetry_overhead_pct = (m_tel.mean_ns / m.mean_ns - 1.0) * 100.0;
        let measured = m.mean_ns / samples as f64;
        let modeled = outcome.report.wall_ns / samples as f64;
        let (host, total_with_host) = outcome.breakdowns.iter().fold((0.0, 0.0), |(h, t), b| {
            (h + b.route_ns + b.combine_ns, t + b.total_with_host_ns())
        });
        let (s1, s2, s3) = outcome
            .breakdowns
            .iter()
            .fold((0.0, 0.0, 0.0), |(a, b, c), bd| {
                (a + bd.stage1_ns, b + bd.stage2_ns, c + bd.stage3_ns)
            });
        let base = find_base(batch_size, mode.as_str(), dtype_name);
        let speedup = if base > 0.0 { base / measured } else { 0.0 };
        println!(
            "  b={batch_size:<4} {mode:<10} {dtype_name:<5} {measured:>9.1} ns/sample \
             (model {modeled:>9.1}, host share {:.2}, telemetry {telemetry_overhead_pct:+.1}%){}",
            host / total_with_host,
            if base > 0.0 {
                format!("  {speedup:.2}x vs baseline")
            } else {
                String::new()
            }
        );
        if base > 0.0 && measured > base * 1.20 {
            regressions.push(format!(
                "b={batch_size} {mode} {dtype_name}: {measured:.1} ns/sample vs baseline \
                 {base:.1} (+{:.0}%)",
                (measured / base - 1.0) * 100.0
            ));
        }
        rows.push(Row {
            batch_size,
            mode: mode.as_str().to_string(),
            batches: sweep.num_batches,
            samples_per_serve: samples,
            measured_ns_per_sample: measured,
            modeled_ns_per_sample: modeled,
            host_overhead_share: host / total_with_host,
            bit_identical,
            simd: simd_tier.clone(),
            embed_dtype: dtype_name.to_string(),
            stage1_ns_per_sample: s1 / samples as f64,
            stage2_ns_per_sample: s2 / samples as f64,
            stage3_ns_per_sample: s3 / samples as f64,
            telemetry_overhead_pct,
            baseline_ns_per_sample: base,
            speedup_vs_baseline: speedup,
        });
    };

    for &batch_size in sweep.batch_sizes {
        let (tables, load_ns) = load_tables();
        coldstart_ns.get_or_insert(load_ns);
        for mode in [PipelineMode::Sequential, PipelineMode::DoubleBuf] {
            measure(
                &mut rows,
                &mut regressions,
                &tables,
                batch_size,
                mode,
                EmbedDtype::F32,
            );
        }
    }

    // Int8 EMT rider: one sequential config; the quantized kernel must
    // model a strictly smaller stage 2 than its f32 twin (smaller MRAM
    // rows and the cheaper u8 accumulate path).
    let int8_batch = sweep.batch_sizes[1.min(sweep.batch_sizes.len() - 1)];
    {
        let (tables, _) = load_tables();
        measure(
            &mut rows,
            &mut regressions,
            &tables,
            int8_batch,
            PipelineMode::Sequential,
            EmbedDtype::Int8,
        );
        let s2 = |dtype: &str| {
            rows.iter()
                .find(|r| {
                    r.batch_size == int8_batch && r.mode == "sequential" && r.embed_dtype == dtype
                })
                .map(|r| r.stage2_ns_per_sample)
                .expect("both dtypes swept")
        };
        assert!(
            s2("int8") < s2("f32"),
            "int8 stage 2 ({}) must model strictly below f32 ({})",
            s2("int8"),
            s2("f32")
        );
    }
    let _ = std::fs::remove_file(&pack_path);

    if let Some(path) = check {
        if regressions.is_empty() {
            println!("check vs {path}: OK (no >20% ns/sample regression)");
            return;
        }
        eprintln!("check vs {path}: REGRESSION");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    // The cold-start row: total wall of the first packed-table
    // mmap-load of this run. Reported for trajectory visibility only —
    // its mode never matches a serve row, so it is never gated.
    let cold = coldstart_ns.expect("at least one sweep point ran");
    println!("  coldstart (packed-table mmap load): {:.1} us", cold / 1e3);
    rows.push(Row {
        batch_size: 0,
        mode: "coldstart".to_string(),
        batches: 0,
        samples_per_serve: 0,
        measured_ns_per_sample: cold,
        modeled_ns_per_sample: 0.0,
        host_overhead_share: 0.0,
        bit_identical: true,
        simd: simd_tier.clone(),
        embed_dtype: "f32".to_string(),
        stage1_ns_per_sample: 0.0,
        stage2_ns_per_sample: 0.0,
        stage3_ns_per_sample: 0.0,
        telemetry_overhead_pct: 0.0,
        baseline_ns_per_sample: 0.0,
        speedup_vs_baseline: 0.0,
    });

    let mut doc: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str("steady_state".into())),
        ("dataset".into(), Value::Str("goodreads/2000".into())),
        ("nr_dpus".into(), Value::UInt(NR_DPUS as u64)),
        ("num_tables".into(), Value::UInt(NUM_TABLES as u64)),
        ("dim".into(), Value::UInt(DIM as u64)),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "rows".into(),
            Value::Array(rows.iter().map(serde::Serialize::to_value).collect()),
        ),
    ];
    if let Some(b) = baseline_value {
        doc.push(("baseline_label".into(), Value::Str(label)));
        doc.push(("baseline_rows".into(), b));
    }
    let json = serde::json::to_string_pretty(&Value::Object(doc));
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }
}
