//! Serial-vs-parallel DPU-fleet launch microbenchmark.
//!
//! Measures the wall-clock throughput of `PimSystem::launch_all` on a
//! 256-DPU system running an embedding-style bag-sum kernel, sweeping
//! `host_threads`, and verifies that every parallel `LaunchReport` is
//! bit-identical to the serial one. Results land in
//! repo-root `BENCH_launch.json`.
//!
//! Note: the speedup column only reflects real concurrency when the
//! machine has multiple CPUs; on a single-CPU host the sweep measures
//! thread-management overhead and the identity checks still hold.

use bench::timing;
use upmem_sim::{DpuId, Kernel, LaunchReport, PimConfig, PimSystem, Result, TaskletCtx};

const NR_DPUS: usize = 256;
const TASKLETS: usize = 14;
const ROW_BYTES: usize = 128; // 32 dims x f32
const LOOKUPS_PER_TASKLET: usize = 24;

/// Embedding-style kernel: each tasklet gathers `LOOKUPS_PER_TASKLET`
/// rows from MRAM and accumulates them, like the stage-2 bag-sum.
struct BagSum;

impl Kernel for BagSum {
    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
        let mut row = [0u8; ROW_BYTES];
        let stride = (ctx.dpu_id().0 as usize * 37 + ctx.tasklet_id() * 13) % 256;
        for i in 0..LOOKUPS_PER_TASKLET {
            let addr = (((stride + i * 7) % 256) * ROW_BYTES) as u32;
            ctx.mram_read(addr, &mut row)?;
            ctx.charge_accumulate(ROW_BYTES as u64 / 4);
        }
        ctx.charge_loop(LOOKUPS_PER_TASKLET as u64);
        Ok(())
    }
}

fn build_system(host_threads: usize) -> PimSystem {
    let mut sys = PimSystem::new(PimConfig::new(NR_DPUS, TASKLETS).with_host_threads(host_threads))
        .expect("valid config");
    let table = vec![0x5Au8; 256 * ROW_BYTES];
    for d in 0..NR_DPUS {
        sys.load_mram(DpuId(d as u32), 0, &table)
            .expect("table fits");
    }
    sys
}

fn launch_once(sys: &mut PimSystem) -> LaunchReport {
    sys.launch_all(&BagSum).expect("launch succeeds")
}

#[derive(serde::Serialize)]
struct SweepRow {
    host_threads: usize,
    mean_ns: f64,
    iters: u64,
    speedup_vs_serial: f64,
    report_identical_to_serial: bool,
}

#[derive(serde::Serialize)]
struct Output {
    nr_dpus: usize,
    tasklets: usize,
    host_cpus: usize,
    rows: Vec<SweepRow>,
}

fn main() {
    let host_cpus = upmem_sim::default_host_threads();
    println!("launch_all sweep: {NR_DPUS} DPUs x {TASKLETS} tasklets, {host_cpus} host CPU(s)");

    let mut serial_sys = build_system(1);
    let baseline_report = launch_once(&mut serial_sys);

    let mut sweep = vec![1usize, 2, 4, 8];
    if !sweep.contains(&host_cpus) {
        sweep.push(host_cpus);
    }

    let mut serial_ns = 0.0;
    let mut rows = Vec::new();
    for &threads in &sweep {
        let mut sys = build_system(threads);
        let identical = launch_once(&mut sys) == baseline_report;
        let m = timing::run(&format!("launch_all/threads={threads}"), || {
            std::hint::black_box(launch_once(&mut sys));
        });
        if threads == 1 {
            serial_ns = m.mean_ns;
        }
        rows.push(SweepRow {
            host_threads: threads,
            mean_ns: m.mean_ns,
            iters: m.iters,
            speedup_vs_serial: if m.mean_ns > 0.0 {
                serial_ns / m.mean_ns
            } else {
                0.0
            },
            report_identical_to_serial: identical,
        });
    }

    for row in &rows {
        assert!(
            row.report_identical_to_serial,
            "host_threads={} produced a different LaunchReport",
            row.host_threads
        );
        println!(
            "  threads={:<3} speedup {:.2}x  (bit-identical: {})",
            row.host_threads, row.speedup_vs_serial, row.report_identical_to_serial
        );
    }

    let out = Output {
        nr_dpus: NR_DPUS,
        tasklets: TASKLETS,
        host_cpus,
        rows,
    };
    let json = serde::json::to_string_pretty(&out);
    // cargo runs benches with cwd = the package dir; anchor at the
    // repo root, where all BENCH_*.json trajectory files live.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_launch.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
