//! Shared experiment setup: scaled datasets, models, workloads and the
//! four backends, built the same way for every figure.
//!
//! The paper's full-size tables (up to 6M rows x 8 replicas) would need
//! several GB of host memory to materialize functionally, so the
//! default evaluation scales item counts down by [`EvalConfig::item_scale`]
//! (the GPU cache of FAE is scaled by the same factor). Partitioning,
//! caching and routing logic are scale-free; EXPERIMENTS.md records the
//! scaling next to every result.

use baselines::{
    CpuMemoryModel, DlrmCpu, DlrmHybrid, Fae, GpuModel, InferenceBackend, UpdlrmBackend,
};
use dlrm_model::{Dlrm, DlrmConfig};
use std::sync::Arc;
use updlrm_core::{CoreError, PartitionStrategy, UpdlrmConfig};
use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};

/// Evaluation scale knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Divide Table 1 item counts by this factor.
    pub item_scale: usize,
    /// Batches of 64 inferences per measurement (the paper uses 200).
    pub num_batches: usize,
    /// Total DPUs (the paper uses 256).
    pub nr_dpus: usize,
    /// Tasklets per DPU (the paper uses 14).
    pub tasklets: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EvalConfig {
    /// Fast configuration for CI-style shape tests.
    pub fn quick() -> Self {
        EvalConfig {
            item_scale: 512,
            num_batches: 4,
            nr_dpus: 256,
            tasklets: 14,
            seed: 7,
        }
    }

    /// Standard configuration for the experiment binaries.
    pub fn standard() -> Self {
        EvalConfig {
            item_scale: 64,
            num_batches: 20,
            nr_dpus: 256,
            tasklets: 14,
            seed: 7,
        }
    }

    /// Reads `UPDLRM_EVAL` from the environment: `full` runs the
    /// paper's 12,800 inferences at a larger scale, anything else (or
    /// unset) uses [`EvalConfig::standard`].
    pub fn from_env() -> Self {
        match std::env::var("UPDLRM_EVAL").as_deref() {
            Ok("full") => EvalConfig {
                item_scale: 32,
                num_batches: 200,
                nr_dpus: 256,
                tasklets: 14,
                seed: 7,
            },
            Ok("quick") => Self::quick(),
            _ => Self::standard(),
        }
    }

    /// The spec scaled to this configuration.
    pub fn scale(&self, spec: &DatasetSpec) -> DatasetSpec {
        spec.scaled_down(self.item_scale)
    }

    /// Trace configuration (8 tables, batch 64, Criteo-style dense).
    pub fn trace(&self) -> TraceConfig {
        TraceConfig {
            num_tables: 8,
            batch_size: 64,
            num_batches: self.num_batches,
            num_dense: 13,
            seed: self.seed,
        }
    }
}

/// Everything one dataset's evaluation needs, built once and shared by
/// the backends.
pub struct EvalSetup {
    /// The scaled dataset specification.
    pub spec: DatasetSpec,
    /// The evaluation configuration used.
    pub eval: EvalConfig,
    /// The DLRM model (8 tables matching the spec).
    pub model: Arc<Dlrm>,
    /// The generated request trace.
    pub workload: Workload,
    /// Per-table access profiles of the trace.
    pub profiles: Vec<FreqProfile>,
}

impl std::fmt::Debug for EvalSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSetup")
            .field("spec", &self.spec.short)
            .field("num_batches", &self.workload.batches.len())
            .finish()
    }
}

impl EvalSetup {
    /// Builds the standard evaluation setup for one dataset.
    ///
    /// # Errors
    ///
    /// Model construction errors (propagated from [`Dlrm::new`]).
    pub fn build(spec: &DatasetSpec, eval: EvalConfig) -> Result<Self, CoreError> {
        let spec = eval.scale(spec);
        let workload = Workload::generate(&spec, eval.trace());
        let model = Arc::new(Dlrm::new(DlrmConfig {
            num_dense: 13,
            embedding_dim: 32,
            table_rows: vec![spec.num_items; 8],
            bottom_hidden: vec![64],
            top_hidden: vec![64, 16],
            seed: eval.seed,
        })?);
        let profiles = (0..8)
            .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
            .collect();
        Ok(EvalSetup {
            spec,
            eval,
            model,
            workload,
            profiles,
        })
    }

    /// The GPU model with device memory scaled like the tables (the
    /// paper's 11 GB GTX 1080 Ti against full-size tables).
    pub fn gpu_model(&self) -> GpuModel {
        GpuModel {
            mem_bytes: (11usize << 30) / self.eval.item_scale,
            ..GpuModel::default()
        }
    }

    /// The CPU memory model with the LLC scaled like the tables (the
    /// paper's 11 MB Xeon LLC against full-size tables) — without this,
    /// scaled-down tables would fit the cache and flatter the CPU.
    pub fn cpu_memory_model(&self) -> CpuMemoryModel {
        CpuMemoryModel {
            llc_bytes: ((11usize << 20) / self.eval.item_scale).max(4096),
            ..CpuMemoryModel::default()
        }
    }

    /// DLRM-CPU backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn cpu(&self) -> Result<DlrmCpu, CoreError> {
        DlrmCpu::new(self.model.clone(), &self.profiles, self.cpu_memory_model())
    }

    /// DLRM-Hybrid backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn hybrid(&self) -> Result<DlrmHybrid, CoreError> {
        DlrmHybrid::new(
            self.model.clone(),
            &self.profiles,
            self.cpu_memory_model(),
            self.gpu_model(),
        )
    }

    /// FAE backend (85% access-coverage target for the hot-entry
    /// classification, as in the FAE paper's popularity threshold).
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn fae(&self) -> Result<Fae, CoreError> {
        Fae::new(
            self.model.clone(),
            &self.profiles,
            self.cpu_memory_model(),
            self.gpu_model(),
            0.85,
        )
    }

    /// UpDLRM backend with the given strategy and optional fixed `N_c`.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn updlrm(
        &self,
        strategy: PartitionStrategy,
        n_c: Option<usize>,
    ) -> Result<UpdlrmBackend, CoreError> {
        let mut config = UpdlrmConfig::with_dpus(self.eval.nr_dpus, strategy);
        config.tasklets = self.eval.tasklets;
        config.n_c = n_c;
        UpdlrmBackend::from_workload(
            config,
            self.model.clone(),
            &self.workload,
            self.cpu_memory_model(),
        )
    }

    /// Runs a backend over the whole trace and returns total latency in
    /// nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates backend execution failures.
    pub fn measure(&self, backend: &mut dyn InferenceBackend) -> Result<f64, CoreError> {
        let mut total = 0.0;
        for batch in &self.workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            total += report.total_ns();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_builds_and_measures() {
        let setup = EvalSetup::build(&DatasetSpec::amazon_clothes(), EvalConfig::quick()).unwrap();
        assert_eq!(setup.workload.batches.len(), 4);
        let mut cpu = setup.cpu().unwrap();
        let total = setup.measure(&mut cpu).unwrap();
        assert!(total > 0.0);
    }

    #[test]
    fn gpu_memory_scales_with_items() {
        let setup = EvalSetup::build(&DatasetSpec::amazon_clothes(), EvalConfig::quick()).unwrap();
        assert_eq!(setup.gpu_model().mem_bytes, (11usize << 30) / 512);
    }
}
