//! Fig. 6 — Movie: access pattern per partition with and without cache.

use bench::{experiments, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    let r = experiments::fig6(eval).expect("fig6 experiment");
    let mut t = Table::new(
        "Fig. 6: Movie, accesses per partition (8 partitions)",
        &[
            "partition",
            "NU w/o cache",
            "NU + naive cache",
            "cache-aware (Alg. 1)",
        ],
    );
    for p in 0..r.nu_load.len() {
        t.row(vec![
            p.to_string(),
            format!("{:.0}", r.nu_load[p]),
            format!("{:.0}", r.naive_cache_load[p]),
            format!("{:.0}", r.ca_load[p]),
        ]);
    }
    t.print();
    t.write_csv("fig6");
    println!(
        "total accesses cut by caching: {:.0}% (paper: ~40%)",
        r.cache_reduction * 100.0
    );
    println!(
        "imbalance (max/mean): NU {:.2}, NU+naive cache {:.2}, cache-aware {:.2}",
        r.nu_imbalance(),
        r.naive_imbalance(),
        r.ca_imbalance()
    );
}
