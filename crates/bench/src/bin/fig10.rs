//! Fig. 10 — latency breakdown of the embedding layer (GoodReads).

use bench::{experiments, fmt_ns, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running fig10 (GoodReads, 3 strategies x 3 N_c)...");
    let rows = experiments::fig10(eval).expect("fig10 experiment");
    let mut t = Table::new(
        "Fig. 10: embedding-layer latency breakdown (GoodReads)",
        &[
            "strategy",
            "N_c",
            "stage1 CPU->DPU",
            "stage2 lookup",
            "stage3 DPU->CPU",
            "total",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.strategy.clone(),
            r.n_c.to_string(),
            format!("{:.0}%", r.stage1_frac * 100.0),
            format!("{:.0}%", r.stage2_frac * 100.0),
            format!("{:.0}%", r.stage3_frac * 100.0),
            fmt_ns(r.total_ns),
        ]);
    }
    t.print();
    t.write_csv("fig10");
    println!("paper: CA cuts the lookup share from 71-77% (U/NU) to 43-52%;");
    println!("       larger N_c raises stage-3 share and lowers stage-1 share");
}
