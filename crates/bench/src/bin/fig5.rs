//! Fig. 5 — proportion of accesses per row block (8 blocks).

use bench::{experiments, BarChart, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    let rows = experiments::fig5(eval);
    let mut t = Table::new(
        "Fig. 5: accesses per row block (8 contiguous blocks)",
        &[
            "dataset", "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "max/min",
        ],
    );
    for r in &rows {
        let mut cells = vec![r.dataset.clone()];
        cells.extend(r.blocks.iter().map(u64::to_string));
        cells.push(format!("{:.0}x", r.skew));
        t.row(cells);
    }
    t.print();
    t.write_csv("fig5");
    for r in &rows {
        let mut chart = BarChart::new(&format!("{} accesses per block", r.dataset));
        for (i, &b) in r.blocks.iter().enumerate() {
            chart.bar(&format!("b{i}"), b as f64);
        }
        chart.print();
    }
    println!("paper: the most popular block sees ~340x the accesses of the least popular");
}
