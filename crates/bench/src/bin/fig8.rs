//! Fig. 8 — end-to-end inference speedup over DLRM-CPU.

use bench::{experiments, fmt_ns, BarChart, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!(
        "running fig8 ({} batches x 64, item scale 1/{})...",
        eval.num_batches, eval.item_scale
    );
    let rows = experiments::fig8(eval).expect("fig8 experiment");
    let mut t = Table::new(
        "Fig. 8: inference speedup over DLRM-CPU",
        &[
            "dataset",
            "category",
            "CPU",
            "Hybrid",
            "FAE",
            "UpDLRM",
            "UpDLRM total",
        ],
    );
    for r in &rows {
        let s = r.speedups();
        t.row(vec![
            r.dataset.clone(),
            r.hotness.clone(),
            "1.00x".into(),
            format!("{:.2}x", s[1]),
            format!("{:.2}x", s[2]),
            format!("{:.2}x", s[3]),
            fmt_ns(r.updlrm_ns),
        ]);
    }
    t.print();
    t.write_csv("fig8");
    let mut chart = BarChart::new("UpDLRM speedup over DLRM-CPU");
    for r in &rows {
        chart.bar(&r.dataset, r.speedups()[3]);
    }
    chart.print();
    println!("paper: UpDLRM 1.9-3.2x vs CPU, 2.2-4.6x vs Hybrid, 1.1-2.3x vs FAE;");
    println!("       Hybrid worst overall; highest UpDLRM speedups on High Hot datasets");
}
