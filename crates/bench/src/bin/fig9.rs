//! Fig. 9 — embedding-layer speedup of U/NU/CA partitioning over
//! DLRM-CPU, N_c fixed at 2, 4 or 8.

use bench::{experiments, EvalConfig, Table};
use workloads::DatasetSpec;

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running fig9 (6 datasets x 3 strategies x 3 N_c)...");
    let rows = experiments::fig9(&DatasetSpec::paper_six(), eval).expect("fig9 experiment");
    let mut t = Table::new(
        "Fig. 9: embedding-layer speedup over DLRM-CPU",
        &["dataset", "strategy", "N_c", "speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            r.strategy.clone(),
            r.n_c.to_string(),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.print();
    t.write_csv("fig9");
    println!("paper: CA >= NU >= U on High Hot datasets; near-equal on 'clo';");
    println!("       no universally best N_c across datasets");
}
