//! Energy comparison (extension of the paper's §2.3 TCO discussion).

use bench::{experiments, EvalConfig, Table};
use workloads::DatasetSpec;

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running energy model comparison...");
    let rows = experiments::energy(&DatasetSpec::paper_six(), eval).expect("energy experiment");
    let mut t = Table::new(
        "Embedding-layer energy (modeled)",
        &["dataset", "UpDLRM (uJ)", "CPU DRAM (uJ)", "reduction"],
    );
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            format!("{:.0}", r.updlrm_uj),
            format!("{:.0}", r.cpu_uj),
            format!("{:.0}%", (1.0 - r.updlrm_uj / r.cpu_uj) * 100.0),
        ]);
    }
    t.print();
    t.write_csv("energy");
    println!("paper (UPMEM tech report, cited in §2.3): ~60% energy reduction potential");
}
