//! Fig. 3 — MRAM read latency versus access size.

use bench::{experiments, Table};

fn main() {
    let rows = experiments::fig3();
    let mut t = Table::new(
        "Fig. 3: MRAM read latency (8-byte aligned DMA, <= 2048 B)",
        &["size (B)", "latency (ns)", "ns/B"],
    );
    for r in &rows {
        t.row(vec![
            r.size_bytes.to_string(),
            format!("{:.1}", r.latency_ns),
            format!("{:.3}", r.latency_ns / r.size_bytes as f64),
        ]);
    }
    t.print();
    t.write_csv("fig3");
    let l8 = rows[0].latency_ns;
    let l32 = rows[2].latency_ns;
    let l2048 = rows.last().expect("rows").latency_ns;
    println!(
        "flat region 8->32 B: {:.2}x; 32->2048 B: {:.2}x",
        l32 / l8,
        l2048 / l32
    );
}
