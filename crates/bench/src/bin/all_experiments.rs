//! Runs every experiment binary's logic in sequence — the one-shot
//! reproduction entry point (`cargo run --release -p bench --bin
//! all_experiments`).

use std::process::Command;

fn main() {
    let bins = [
        "fig3",
        "table1",
        "fig5",
        "fig6",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "cache_capacity",
        "energy",
        "ablations",
        "pipeline",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!("\n===== {bin} =====");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("cannot run {}: {e}", path.display()),
        }
    }
}
