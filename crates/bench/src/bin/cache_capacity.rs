//! §3.3 — cache-capacity sensitivity (GoodReads, 40/70/100%).

use bench::{experiments, fmt_ns, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running cache-capacity sensitivity (GoodReads)...");
    let rows = experiments::cache_capacity(eval).expect("cache_capacity experiment");
    let mut t = Table::new(
        "Cache capacity sensitivity (GoodReads, DPU lookup time)",
        &["cache capacity", "lookup time", "reduction vs no cache"],
    );
    for r in &rows {
        t.row(vec![
            if r.fraction == 0.0 {
                "none".into()
            } else {
                format!("{:.0}%", r.fraction * 100.0)
            },
            fmt_ns(r.lookup_ns),
            format!("{:.0}%", r.reduction_vs_no_cache * 100.0),
        ]);
    }
    t.print();
    t.write_csv("cache_capacity");
    println!("paper: 40% / 70% / 100% capacity cuts lookup time by 17% / 22% / 26%");
}
