//! DESIGN.md §4 ablations: dedup, padded transfers, auto N_c, Alg. 1
//! benefit credit.

use bench::{experiments, fmt_ns, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running ablations (GoodReads)...");
    let rows = experiments::ablations(eval).expect("ablation experiment");
    let mut t = Table::new(
        "Ablations (GoodReads, embedding time over trace)",
        &["knob", "ON", "OFF", "OFF/ON"],
    );
    for r in &rows {
        t.row(vec![
            r.knob.clone(),
            fmt_ns(r.on_ns),
            fmt_ns(r.off_ns),
            format!("{:.2}x", r.off_ns / r.on_ns),
        ]);
    }
    t.print();
    t.write_csv("ablations");
}
