//! Table 1 — workload configurations (spec versus synthesized trace).

use bench::{experiments, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    let rows = experiments::table1(eval);
    let mut t = Table::new(
        "Table 1: workload configurations",
        &[
            "workload",
            "category",
            "Avg.Red (paper)",
            "Avg.Red (measured)",
            "#items (paper)",
            "#items (scaled)",
        ],
    );
    for r in &rows {
        t.row(vec![
            format!("{}({})", r.name, r.short),
            r.hotness.clone(),
            format!("{:.2}", r.spec_avg_reduction),
            format!("{:.2}", r.measured_avg_reduction),
            r.items_full.to_string(),
            r.items_scaled.to_string(),
        ]);
    }
    t.print();
    t.write_csv("table1");
    println!("item scale: 1/{} (see EXPERIMENTS.md)", eval.item_scale);
}
