//! Fig. 11 — DPU lookup time under varying average reduction and
//! lookup data size (balanced synthetic datasets).

use bench::{experiments, EvalConfig, Table};

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running fig11 (reduction 50..300 x lookup size 8..128 B)...");
    let rows = experiments::fig11(eval).expect("fig11 experiment");
    let sizes = [8usize, 16, 32, 64, 128];
    let reds = [50usize, 100, 150, 200, 250, 300];
    let mut header = vec!["avg reduction".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s} B")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig. 11: DPU lookup time (us per batch)", &header_refs);
    for &red in &reds {
        let mut cells = vec![red.to_string()];
        for &size in &sizes {
            let r = rows
                .iter()
                .find(|r| r.avg_reduction == red && r.lookup_bytes == size)
                .expect("swept point");
            cells.push(format!("{:.0}", r.lookup_us));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv("fig11");
    println!("paper: near-linear growth at 8 B; saturating beyond ~64 B as reuse");
    println!("       within a batch hides MRAM latency (hence N_c in {{2,4,8}} elsewhere)");
}
