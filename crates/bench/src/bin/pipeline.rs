//! Inter-batch pipelining (extension): overlap stage 1/3 bus transfers
//! with stage-2 lookups across consecutive batches.

use bench::{experiments, fmt_ns, EvalConfig, Table};
use workloads::DatasetSpec;

fn main() {
    let eval = EvalConfig::from_env();
    eprintln!("running inter-batch pipelining analysis...");
    let rows = experiments::pipeline(&DatasetSpec::paper_six(), eval).expect("pipeline experiment");
    let mut t = Table::new(
        "Inter-batch pipelining of the embedding stages (extension)",
        &["dataset", "sequential", "pipelined", "speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            fmt_ns(r.sequential_ns),
            fmt_ns(r.pipelined_ns),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.print();
    t.write_csv("pipeline");
    println!("stage-2-bound traces gain little; transfer-bound configurations gain more");
}
