//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns typed rows so that (a) the `bin/` targets can
//! print/CSV them and (b) the shape tests in `tests/` can assert the
//! paper's qualitative claims against the same code path.

use crate::setup::{EvalConfig, EvalSetup};
use baselines::InferenceBackend;
use updlrm_core::{CoreError, PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use upmem_sim::CostModel;
use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};

/// Fig. 3 — MRAM read latency versus access size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// DMA transfer size in bytes.
    pub size_bytes: usize,
    /// Modeled latency in nanoseconds.
    pub latency_ns: f64,
}

/// Regenerates Fig. 3 from the cost model (8 B to 2048 B).
pub fn fig3() -> Vec<Fig3Row> {
    let cost = CostModel::default();
    let mut out = Vec::new();
    let mut size = 8;
    while size <= 2048 {
        out.push(Fig3Row {
            size_bytes: size,
            latency_ns: cost.dma_nanos(size),
        });
        size *= 2;
    }
    out
}

/// Table 1 — workload configurations, spec versus measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Dataset name.
    pub name: String,
    /// Paper short tag.
    pub short: String,
    /// Hotness class.
    pub hotness: String,
    /// Paper's Avg.Reduction.
    pub spec_avg_reduction: f64,
    /// Measured Avg.Reduction of the synthesized trace.
    pub measured_avg_reduction: f64,
    /// Paper's item count.
    pub items_full: usize,
    /// Scaled item count actually used.
    pub items_scaled: usize,
}

/// Regenerates Table 1: the six workloads with measured reductions.
pub fn table1(eval: EvalConfig) -> Vec<Table1Row> {
    DatasetSpec::paper_six()
        .into_iter()
        .map(|spec| {
            let scaled = eval.scale(&spec);
            let trace = TraceConfig {
                num_batches: 4,
                ..eval.trace()
            };
            let w = Workload::generate(&scaled, trace);
            Table1Row {
                name: spec.name.clone(),
                short: spec.short.clone(),
                hotness: spec.hotness.to_string(),
                spec_avg_reduction: spec.avg_reduction,
                measured_avg_reduction: w.measured_avg_reduction(),
                items_full: spec.num_items,
                items_scaled: scaled.num_items,
            }
        })
        .collect()
}

/// Fig. 5 — accesses per row block (8 contiguous blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Dataset name.
    pub dataset: String,
    /// Total accesses per block, block 0 holding the lowest item ids.
    pub blocks: Vec<u64>,
    /// Max/min block ratio.
    pub skew: f64,
}

/// Regenerates Fig. 5 for the Goodreads / Movie / Twitch traces.
pub fn fig5(eval: EvalConfig) -> Vec<Fig5Row> {
    [
        DatasetSpec::goodreads(),
        DatasetSpec::movie(),
        DatasetSpec::twitch(),
    ]
    .into_iter()
    .map(|spec| {
        let scaled = eval.scale(&spec);
        let w = Workload::generate(
            &scaled,
            TraceConfig {
                num_batches: 8,
                ..eval.trace()
            },
        );
        let mut profile = FreqProfile::new(scaled.num_items);
        for input in w.table_inputs(0) {
            profile.record_input(input);
        }
        Fig5Row {
            dataset: spec.name.clone(),
            blocks: profile.block_histogram(8),
            skew: profile.block_skew(8),
        }
    })
    .collect()
}

/// Fig. 6 — Movie: accesses per partition for NU without cache, NU with
/// naively-placed cache, and cache-aware partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// Per-partition loads under NU, no caching.
    pub nu_load: Vec<f64>,
    /// Per-partition loads when GRACE-style caching is bolted onto the
    /// NU layout (each list's combos land with its hottest item).
    pub naive_cache_load: Vec<f64>,
    /// Per-partition loads under Algorithm 1 (cache-aware).
    pub ca_load: Vec<f64>,
    /// Total access reduction from caching (fraction of NU total).
    pub cache_reduction: f64,
}

impl Fig6Result {
    fn imbalance(load: &[f64]) -> f64 {
        let max = load.iter().cloned().fold(0.0f64, f64::max);
        let mean = load.iter().sum::<f64>() / load.len().max(1) as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Max/mean imbalance of the NU loads.
    pub fn nu_imbalance(&self) -> f64 {
        Self::imbalance(&self.nu_load)
    }

    /// Max/mean imbalance of the naive-cache loads.
    pub fn naive_imbalance(&self) -> f64 {
        Self::imbalance(&self.naive_cache_load)
    }

    /// Max/mean imbalance of the cache-aware loads.
    pub fn ca_imbalance(&self) -> f64 {
        Self::imbalance(&self.ca_load)
    }
}

/// Regenerates Fig. 6 on the Movie trace with 8 partitions.
///
/// # Errors
///
/// Partitioning errors (capacity, configuration).
pub fn fig6(eval: EvalConfig) -> Result<Fig6Result, CoreError> {
    use cooccur_cache::{CacheListSet, CooccurGraph, MinerConfig};

    let spec = eval.scale(&DatasetSpec::movie());
    let w = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: 8,
            ..eval.trace()
        },
    );
    let profile = FreqProfile::from_inputs(spec.num_items, w.table_inputs(0));
    let parts = 8;
    let cap = spec.num_items; // capacity is not the subject here

    let nu = updlrm_core::non_uniform(spec.num_items, parts, cap, &profile)?;

    // Mine cache lists and measure their real benefit on the trace.
    let miner = MinerConfig::default();
    let mut graph = CooccurGraph::new(&profile, miner.hot_set_size);
    let mut budget = miner.max_samples;
    'outer: for input in w.table_inputs(0) {
        for s in input.iter() {
            if budget == 0 {
                break 'outer;
            }
            graph.record_sample(s);
            budget -= 1;
        }
    }
    let mut lists = CacheListSet::mine(&graph, &miner);
    lists.measure_benefit(w.table_inputs(0));

    // Naive placement: a list's cache rows land on the NU partition of
    // its hottest member; accesses to the list's items migrate there as
    // combined cache reads.
    let mut naive = nu.part_load.clone();
    let mut saved_total = 0.0;
    for list in &lists.lists {
        let host = nu.part_of_row[list.items[0] as usize] as usize;
        let sum_freq: f64 = list.items.iter().map(|&i| profile.count(i) as f64).sum();
        for &i in &list.items {
            let p = nu.part_of_row[i as usize] as usize;
            naive[p] -= profile.count(i) as f64;
        }
        naive[host] += sum_freq - list.benefit;
        saved_total += list.benefit;
    }

    let ca = updlrm_core::cache_aware(spec.num_items, parts, cap, cap, &profile, &lists)?;

    let total_nu: f64 = nu.part_load.iter().sum();
    Ok(Fig6Result {
        nu_load: nu.part_load,
        naive_cache_load: naive,
        ca_load: ca.rows.part_load,
        cache_reduction: if total_nu > 0.0 {
            saved_total / total_nu
        } else {
            0.0
        },
    })
}

/// Fig. 8 — end-to-end inference time per system, per dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Dataset short tag.
    pub dataset: String,
    /// Hotness class.
    pub hotness: String,
    /// Total trace time per system (ns).
    pub cpu_ns: f64,
    /// DLRM-Hybrid total (ns).
    pub hybrid_ns: f64,
    /// FAE total (ns).
    pub fae_ns: f64,
    /// UpDLRM total (ns).
    pub updlrm_ns: f64,
}

impl Fig8Row {
    /// Speedup of each system over DLRM-CPU, in Table 2 order
    /// (CPU, Hybrid, FAE, UpDLRM).
    pub fn speedups(&self) -> [f64; 4] {
        [
            1.0,
            self.cpu_ns / self.hybrid_ns,
            self.cpu_ns / self.fae_ns,
            self.cpu_ns / self.updlrm_ns,
        ]
    }
}

/// Regenerates Fig. 8 across the six Table 1 datasets.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn fig8(eval: EvalConfig) -> Result<Vec<Fig8Row>, CoreError> {
    DatasetSpec::paper_six()
        .iter()
        .map(|spec| fig8_one(spec, eval))
        .collect()
}

/// One dataset's Fig. 8 measurement.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn fig8_one(spec: &DatasetSpec, eval: EvalConfig) -> Result<Fig8Row, CoreError> {
    let setup = EvalSetup::build(spec, eval)?;
    let mut cpu = setup.cpu()?;
    let mut hybrid = setup.hybrid()?;
    let mut fae = setup.fae()?;
    let mut updlrm = setup.updlrm(PartitionStrategy::CacheAware, None)?;
    Ok(Fig8Row {
        dataset: spec.short.clone(),
        hotness: spec.hotness.to_string(),
        cpu_ns: setup.measure(&mut cpu)?,
        hybrid_ns: setup.measure(&mut hybrid)?,
        fae_ns: setup.measure(&mut fae)?,
        updlrm_ns: setup.measure(&mut updlrm)?,
    })
}

/// Fig. 9 — embedding-layer speedup of U/NU/CA over DLRM-CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Dataset short tag.
    pub dataset: String,
    /// Partitioning strategy tag (U / NU / CA).
    pub strategy: String,
    /// Fixed columns per tile.
    pub n_c: usize,
    /// Embedding-layer time on the PIM path (ns, whole trace).
    pub pim_embedding_ns: f64,
    /// Embedding-layer time on DLRM-CPU (ns, whole trace).
    pub cpu_embedding_ns: f64,
}

impl Fig9Row {
    /// Speedup over the CPU embedding layer.
    pub fn speedup(&self) -> f64 {
        self.cpu_embedding_ns / self.pim_embedding_ns
    }
}

/// Regenerates Fig. 9 for the given datasets (pass
/// [`DatasetSpec::paper_six`] for the full figure).
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn fig9(specs: &[DatasetSpec], eval: EvalConfig) -> Result<Vec<Fig9Row>, CoreError> {
    let mut out = Vec::new();
    for spec in specs {
        let setup = EvalSetup::build(spec, eval)?;
        let cpu = setup.cpu()?;
        let cpu_embedding_ns: f64 = setup
            .workload
            .batches
            .iter()
            .map(|b| cpu.embedding_ns(b))
            .sum();
        for strategy in [
            PartitionStrategy::Uniform,
            PartitionStrategy::NonUniform,
            PartitionStrategy::CacheAware,
        ] {
            for n_c in [2usize, 4, 8] {
                let mut backend = setup.updlrm(strategy, Some(n_c))?;
                let mut pim_embedding_ns = 0.0;
                for batch in &setup.workload.batches {
                    let (_, report) = backend.run_batch(batch)?;
                    pim_embedding_ns += report.embedding_ns;
                }
                out.push(Fig9Row {
                    dataset: spec.short.clone(),
                    strategy: strategy.to_string(),
                    n_c,
                    pim_embedding_ns,
                    cpu_embedding_ns,
                });
            }
        }
    }
    Ok(out)
}

/// Fig. 10 — per-stage latency breakdown on GoodReads.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Partitioning strategy tag.
    pub strategy: String,
    /// Fixed columns per tile.
    pub n_c: usize,
    /// Stage 1 (CPU→DPU) share of the embedding time.
    pub stage1_frac: f64,
    /// Stage 2 (DPU lookup) share.
    pub stage2_frac: f64,
    /// Stage 3 (DPU→CPU) share.
    pub stage3_frac: f64,
    /// Absolute embedding time over the trace (ns).
    pub total_ns: f64,
}

/// Regenerates Fig. 10 (GoodReads, U/NU/CA x N_c in {2,4,8}).
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn fig10(eval: EvalConfig) -> Result<Vec<Fig10Row>, CoreError> {
    let setup = EvalSetup::build(&DatasetSpec::goodreads(), eval)?;
    let mut out = Vec::new();
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::CacheAware,
    ] {
        for n_c in [2usize, 4, 8] {
            let mut backend = setup.updlrm(strategy, Some(n_c))?;
            let mut acc = updlrm_core::EmbeddingBreakdown::default();
            for batch in &setup.workload.batches {
                let (_, report) = backend.run_batch(batch)?;
                if let Some(pim) = report.pim {
                    acc.accumulate(&pim);
                }
            }
            let total = acc.total_ns().max(f64::MIN_POSITIVE);
            out.push(Fig10Row {
                strategy: strategy.to_string(),
                n_c,
                stage1_frac: acc.stage1_ns / total,
                stage2_frac: acc.stage2_ns / total,
                stage3_frac: acc.stage3_ns / total,
                total_ns: acc.total_ns(),
            });
        }
    }
    Ok(out)
}

/// Fig. 11 — DPU lookup time under varying reduction and lookup size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Average reduction of the synthetic workload.
    pub avg_reduction: usize,
    /// Bytes loaded from MRAM per lookup (`N_c * 4`).
    pub lookup_bytes: usize,
    /// Mean DPU lookup time (stage 2) per batch, microseconds.
    pub lookup_us: f64,
}

/// Regenerates Fig. 11: balanced synthetic datasets, reduction 50..300,
/// `N_c` in {2,4,8,16,32} (8 B to 128 B lookups), batch 64.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn fig11(eval: EvalConfig) -> Result<Vec<Fig11Row>, CoreError> {
    // A compact per-DPU tile (as in the paper's microbenchmark sweep)
    // so that reduction growth actually revisits rows.
    let items = 8192;
    let mut out = Vec::new();
    for &red in &[50usize, 100, 150, 200, 250, 300] {
        let spec = DatasetSpec::balanced_synthetic(items, red as f64);
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: eval.num_batches.min(6),
                ..eval.trace()
            },
        );
        let tables: Vec<dlrm_model::EmbeddingTable> = (0..8)
            .map(|t| dlrm_model::EmbeddingTable::random(items, 32, 0.1, t as u64))
            .collect::<Result<_, _>>()?;
        for &n_c in &[2usize, 4, 8, 16, 32] {
            let mut config = UpdlrmConfig::with_dpus(eval.nr_dpus, PartitionStrategy::Uniform)
                .with_fixed_nc(n_c);
            config.tasklets = eval.tasklets;
            // The batch-dedup extension is what reproduces the paper's
            // saturation at large lookup sizes (see EXPERIMENTS.md).
            config.dedup = true;
            let mut engine = UpdlrmEngine::from_workload(config, &tables, &w)?;
            let mut stage2 = 0.0;
            for batch in &w.batches {
                let (_, b) = engine.run_batch(batch)?;
                stage2 += b.stage2_ns;
            }
            out.push(Fig11Row {
                avg_reduction: red,
                lookup_bytes: n_c * 4,
                lookup_us: stage2 / w.batches.len() as f64 / 1e3,
            });
        }
    }
    Ok(out)
}

/// §3.3 — cache-capacity sensitivity on GoodReads.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheCapacityRow {
    /// Cache capacity as a fraction of the mined lists' requirement.
    pub fraction: f64,
    /// DPU lookup time (stage 2) over the trace (ns).
    pub lookup_ns: f64,
    /// Reduction versus the no-cache baseline.
    pub reduction_vs_no_cache: f64,
}

/// Regenerates the §3.3 sensitivity: cache capacity 0% (no cache),
/// 40%, 70%, 100%.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn cache_capacity(eval: EvalConfig) -> Result<Vec<CacheCapacityRow>, CoreError> {
    let setup = EvalSetup::build(&DatasetSpec::goodreads(), eval)?;
    let lookup_for = |fraction: f64| -> Result<f64, CoreError> {
        let strategy = if fraction == 0.0 {
            PartitionStrategy::NonUniform
        } else {
            PartitionStrategy::CacheAware
        };
        let mut config =
            UpdlrmConfig::with_dpus(setup.eval.nr_dpus, strategy).with_cache_fraction(fraction);
        config.tasklets = setup.eval.tasklets;
        let mut backend = baselines::UpdlrmBackend::from_workload(
            config,
            setup.model.clone(),
            &setup.workload,
            baselines::CpuMemoryModel::default(),
        )?;
        let mut stage2 = 0.0;
        for batch in &setup.workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            stage2 += report.pim.expect("pim backend").stage2_ns;
        }
        Ok(stage2)
    };
    let baseline = lookup_for(0.0)?;
    let mut out = vec![CacheCapacityRow {
        fraction: 0.0,
        lookup_ns: baseline,
        reduction_vs_no_cache: 0.0,
    }];
    for fraction in [0.4, 0.7, 1.0] {
        let lookup_ns = lookup_for(fraction)?;
        out.push(CacheCapacityRow {
            fraction,
            lookup_ns,
            reduction_vs_no_cache: 1.0 - lookup_ns / baseline,
        });
    }
    Ok(out)
}

/// Energy comparison (extension of the paper's §2.3 TCO discussion).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Dataset short tag.
    pub dataset: String,
    /// Modeled PIM-side energy for the embedding layer (microjoules).
    pub updlrm_uj: f64,
    /// Modeled CPU DRAM energy for the same lookups (microjoules).
    pub cpu_uj: f64,
}

/// Compares modeled embedding-layer energy for UpDLRM versus a CPU
/// DRAM path (~60 pJ/byte read + transfer, per the DDR4 literature).
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn energy(specs: &[DatasetSpec], eval: EvalConfig) -> Result<Vec<EnergyRow>, CoreError> {
    const CPU_DRAM_PJ_PER_BYTE: f64 = 60.0;
    let mut out = Vec::new();
    for spec in specs {
        let setup = EvalSetup::build(spec, eval)?;
        let mut backend = setup.updlrm(PartitionStrategy::CacheAware, None)?;
        let mut pim_pj = 0.0;
        let mut lookups = 0u64;
        for batch in &setup.workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            pim_pj += report.pim.expect("pim backend").energy_pj;
            lookups += batch
                .sparse
                .iter()
                .map(|s| s.total_lookups() as u64)
                .sum::<u64>();
        }
        let row_bytes = (setup.model.config().embedding_dim * 4) as f64;
        let cpu_pj = lookups as f64 * row_bytes * CPU_DRAM_PJ_PER_BYTE;
        out.push(EnergyRow {
            dataset: spec.short.clone(),
            updlrm_uj: pim_pj / 1e6,
            cpu_uj: cpu_pj / 1e6,
        });
    }
    Ok(out)
}

/// Inter-batch pipelining gain (extension; see
/// `updlrm_core::pipeline`).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Dataset short tag.
    pub dataset: String,
    /// Back-to-back embedding wall time over the trace (ns).
    pub sequential_ns: f64,
    /// Pipelined wall time (ns).
    pub pipelined_ns: f64,
}

impl PipelineRow {
    /// Speedup of pipelining.
    pub fn speedup(&self) -> f64 {
        self.sequential_ns / self.pipelined_ns.max(f64::MIN_POSITIVE)
    }
}

/// Measures the inter-batch pipelining gain per dataset.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn pipeline(specs: &[DatasetSpec], eval: EvalConfig) -> Result<Vec<PipelineRow>, CoreError> {
    let mut out = Vec::new();
    for spec in specs {
        let setup = EvalSetup::build(spec, eval)?;
        let mut backend = setup.updlrm(PartitionStrategy::CacheAware, None)?;
        let mut breakdowns = Vec::with_capacity(setup.workload.batches.len());
        for batch in &setup.workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            breakdowns.push(report.pim.expect("pim backend"));
        }
        let report = updlrm_core::PipelineReport::from_batches(&breakdowns);
        out.push(PipelineRow {
            dataset: spec.short.clone(),
            sequential_ns: report.sequential_ns,
            pipelined_ns: report.pipelined_ns,
        });
    }
    Ok(out)
}

/// Ablation rows (DESIGN.md §4): each knob's effect on the embedding
/// time for GoodReads.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Knob description.
    pub knob: String,
    /// Embedding time with the knob ON (ns, whole trace).
    pub on_ns: f64,
    /// Embedding time with the knob OFF (ns, whole trace).
    pub off_ns: f64,
}

/// Runs the DESIGN.md §4 ablations on GoodReads.
///
/// # Errors
///
/// Backend construction/execution errors.
pub fn ablations(eval: EvalConfig) -> Result<Vec<AblationRow>, CoreError> {
    let setup = EvalSetup::build(&DatasetSpec::goodreads(), eval)?;
    let measure = |config: UpdlrmConfig| -> Result<f64, CoreError> {
        let mut backend = baselines::UpdlrmBackend::from_workload(
            config,
            setup.model.clone(),
            &setup.workload,
            baselines::CpuMemoryModel::default(),
        )?;
        let mut total = 0.0;
        for batch in &setup.workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            total += report.embedding_ns;
        }
        Ok(total)
    };
    let base = |strategy| {
        let mut c = UpdlrmConfig::with_dpus(setup.eval.nr_dpus, strategy);
        c.tasklets = setup.eval.tasklets;
        c
    };

    let mut out = Vec::new();
    // 1. host-side batch-global dedup of row references (extension).
    out.push(AblationRow {
        knob: "host dedup".into(),
        on_ns: measure(UpdlrmConfig {
            dedup: true,
            ..base(PartitionStrategy::NonUniform)
        })?,
        off_ns: measure(base(PartitionStrategy::NonUniform))?,
    });
    // 2. padded (parallel) stage-1 transfers.
    out.push(AblationRow {
        knob: "padded transfers".into(),
        on_ns: measure(base(PartitionStrategy::NonUniform))?,
        off_ns: measure(UpdlrmConfig {
            pad_transfers: false,
            ..base(PartitionStrategy::NonUniform)
        })?,
    });
    // 3. Eq. 1-3 auto N_c versus the worst fixed candidate.
    let auto = measure(base(PartitionStrategy::NonUniform))?;
    let mut worst_fixed: f64 = 0.0;
    for n_c in [2usize, 4, 8] {
        worst_fixed = worst_fixed.max(measure(
            base(PartitionStrategy::NonUniform).with_fixed_nc(n_c),
        )?);
    }
    out.push(AblationRow {
        knob: "auto N_c (vs worst fixed)".into(),
        on_ns: auto,
        off_ns: worst_fixed,
    });
    // 4. Algorithm 1's benefit credit (line 10): compare CA against CA
    // with all list benefits zeroed (same caching, no load credit).
    let ca_on = measure(base(PartitionStrategy::CacheAware))?;
    // Zeroed-benefit run: emulate by mining lists and rebuilding the
    // engine through the low-level API.
    let ca_off = {
        use cooccur_cache::{CacheListSet, CooccurGraph};
        let config = base(PartitionStrategy::CacheAware);
        let mut profiles = Vec::new();
        let mut lists = Vec::new();
        for t in 0..8 {
            let profile =
                FreqProfile::from_inputs(setup.spec.num_items, setup.workload.table_inputs(t));
            let mut graph = CooccurGraph::new(&profile, config.miner.hot_set_size);
            let mut budget = config.miner.max_samples;
            'rec: for input in setup.workload.table_inputs(t) {
                for s in input.iter() {
                    if budget == 0 {
                        break 'rec;
                    }
                    graph.record_sample(s);
                    budget -= 1;
                }
            }
            let mut set = CacheListSet::mine(&graph, &config.miner);
            set.measure_benefit(setup.workload.table_inputs(t));
            for l in &mut set.lists {
                l.benefit = 0.0; // ablate line 10
            }
            profiles.push(profile);
            lists.push(set);
        }
        let engine = UpdlrmEngine::new(config, setup.model.tables(), &profiles, &lists)?;
        let mut engine = engine;
        let mut total = 0.0;
        for batch in &setup.workload.batches {
            let (_, b) = engine.run_batch(batch)?;
            total += b.total_with_host_ns();
        }
        total
    };
    out.push(AblationRow {
        knob: "Alg.1 benefit credit".into(),
        on_ns: ca_on,
        off_ns: ca_off,
    });
    // 5. hot-row replication (extension) versus plain NU.
    out.push(AblationRow {
        knob: "hot-row replication (NU+R vs NU)".into(),
        on_ns: measure(base(PartitionStrategy::Replicated))?,
        off_ns: measure(base(PartitionStrategy::NonUniform))?,
    });
    Ok(out)
}
