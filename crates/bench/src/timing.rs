//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so instead of criterion the bench
//! targets use this ~50-line harness: warm up, grow the iteration
//! count geometrically until a measurement window is long enough to
//! trust (default 20 ms), then report mean wall time per iteration.
//! That is deliberately simpler than criterion — no outlier rejection
//! or regression fitting — but it is dependency-free and plenty to
//! compare two implementations of the same loop on one machine.

use std::time::Instant;

/// Result of timing one closure.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations in the accepted measurement window.
    pub iters: u64,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
}

impl Measurement {
    /// Formats as a human-readable line, e.g. `zipf/100000  41.2 ns/iter (x65536)`.
    pub fn line(&self) -> String {
        format!(
            "{:<40} {:>12}/iter  (x{})",
            self.name,
            crate::report::fmt_ns(self.mean_ns),
            self.iters
        )
    }
}

/// Times `f`, auto-calibrating the iteration count until the window
/// reaches `min_window_ms` of wall time (capped at 2^20 iterations so
/// pathologically fast closures still terminate).
pub fn run_with_window<F: FnMut()>(name: &str, min_window_ms: u64, mut f: F) -> Measurement {
    for _ in 0..3 {
        f();
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= min_window_ms || iters >= 1 << 20 {
            return Measurement {
                name: name.to_string(),
                iters,
                mean_ns: elapsed.as_nanos() as f64 / iters as f64,
            };
        }
        iters = iters.saturating_mul(4);
    }
}

/// Times `f` with the default 20 ms window and prints the result line.
pub fn run<F: FnMut()>(name: &str, f: F) -> Measurement {
    let m = run_with_window(name, 20, f);
    println!("{}", m.line());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let m = run_with_window("spin", 1, || {
            acc = acc.wrapping_add(std::hint::black_box(acc ^ 0x9E37));
        });
        assert!(m.mean_ns > 0.0);
        assert!(m.iters >= 1);
    }

    #[test]
    fn line_contains_name() {
        let m = Measurement {
            name: "abc".into(),
            iters: 8,
            mean_ns: 1234.5,
        };
        assert!(m.line().contains("abc"));
        assert!(m.line().contains("x8"));
    }
}
