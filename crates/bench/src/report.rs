//! Aligned-table printing and CSV export for experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple column-aligned text table with an optional CSV mirror.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes a CSV mirror under `target/experiments/<name>.csv` and
    /// returns the path (best-effort: IO errors are reported, not
    /// fatal).
    pub fn write_csv(&self, name: &str) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            );
        }
        match fs::write(&path, csv) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// A horizontal ASCII bar chart — the binaries use it to echo the
/// paper's figure form next to the numeric tables.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: &str) -> Self {
        BarChart {
            title: title.to_string(),
            bars: Vec::new(),
        }
    }

    /// Appends one labeled bar (values must be non-negative).
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        self.bars.push((label.to_string(), value.max(0.0)));
        self
    }

    /// Renders the chart with bars scaled to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {} --", self.title);
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let n = if max > 0.0 {
                ((value / max) * width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(out, "{label:>label_w$} | {} {value:.2}", "#".repeat(n));
        }
        out
    }

    /// Prints the chart to stdout at a default width.
    pub fn print(&self) {
        print!("{}", self.render(40));
    }
}

/// Formats nanoseconds as a human-scaled string.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "200".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut b = BarChart::new("demo");
        b.bar("a", 1.0).bar("bb", 2.0).bar("c", 0.0);
        let s = b.render(10);
        assert!(s.contains("-- demo --"));
        // The max bar fills the width, the half bar is half.
        assert!(s.contains(&"#".repeat(10)));
        assert!(s
            .lines()
            .any(|l| l.starts_with(" a |") && l.matches('#').count() == 5));
        // Zero value renders no hashes but keeps the row.
        assert!(s.lines().any(|l| l.trim_start().starts_with("c |")));
    }

    #[test]
    fn bar_chart_handles_empty_and_all_zero() {
        let b = BarChart::new("empty");
        assert!(b.render(10).contains("empty"));
        let mut z = BarChart::new("zeros");
        z.bar("x", 0.0);
        assert!(!z.render(10).contains('#'));
    }

    #[test]
    fn formats_time_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.5 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
