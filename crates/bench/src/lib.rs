//! # bench — the experiment harness
//!
//! Regenerates every table and figure of the UpDLRM paper's evaluation
//! (see DESIGN.md §3 for the experiment index). Each `bin/` target
//! prints one figure as an aligned table and mirrors it to
//! `target/experiments/*.csv`; [`experiments`] exposes the same data as
//! typed rows so the shape tests can assert the paper's qualitative
//! claims.
//!
//! Scale is controlled by the `UPDLRM_EVAL` environment variable:
//! `quick` (CI), unset/`standard`, or `full` (the paper's 12,800
//! inferences).

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod setup;
pub mod timing;

pub use report::{fmt_ns, BarChart, Table};
pub use setup::{EvalConfig, EvalSetup};
