//! `updlrm` — command-line driver for the reproduction.
//!
//! ```text
//! updlrm run   [--dataset read] [--backend updlrm|cpu|hybrid|fae|hetero]
//!              [--strategy u|nu|ca|nur] [--dpus 256] [--nc auto|2|4|8]
//!              [--scale 200] [--batches 10] [--seed 7] [--host-threads N]
//!              [--embed-dtype f32|int8] [--tables FILE]
//!              [--pipeline sequential|doublebuf] [--queue-depth N]
//!              [--plan FILE] [--iters 1] [--warmup 0] [--json FILE]
//!              [--metrics FILE]
//! updlrm pack  --out FILE [--dataset read] [--scale 200] [--seed 7]
//! updlrm plan  --out FILE [--dataset read] [--scale 200] [--tables 8]
//!              [--batches 10] [--seed 7] [--ranks 4] [--dpus-per-rank 64]
//!              [--emt-kb N] [--host-kb N] [--replicate-top 64]
//! updlrm plan  --load FILE
//! updlrm serve --qps N [--arrival poisson|bursty] [--max-batch 64]
//!              [--max-wait-us 200] [--policy block|shed-oldest|reject-new]
//!              [--queue-cap N] [--runtime modeled|wall] [--shards N]
//!              [--time-scale X] [--deterministic] [--dataset read]
//!              [--strategy u|nu|ca|nur] [--dpus 256] [--scale 200]
//!              [--batches 10] [--seed 7] [--host-threads N]
//!              [--workload-v3 FILE] [--replan off|periodic:N|imbalance:T[:N]]
//!              [--drift-snapshot FILE] [--json FILE] [--metrics FILE]
//! updlrm serve --tenants FILE.toml [--no-isolation] [--quantum-us N]
//!              [--dpus N] [--json FILE] [--metrics FILE]
//! updlrm capacity --tenants FILE.toml [--min-dpus 8] [--max-dpus 256]
//!              [--json FILE]
//! updlrm stats --metrics FILE
//! updlrm trace [--dataset movie] [--scale 200] [--batches 10]
//!              [--arrival poisson|bursty --qps N]
//!              [--rotate SETS:ROWS:PERIOD_US:HOT]
//!              [--spike START_US:DUR_US:SET:EXTRA:BOOST]
//!              [--diurnal PERIOD_US:AMPLITUDE] --out trace.upwl
//! updlrm info  [--dataset read]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use updlrm::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  updlrm run   [--dataset TAG] [--backend updlrm|cpu|hybrid|fae|hetero] \
         [--strategy u|nu|ca|nur] [--dpus N] [--nc auto|2|4|8] [--scale N] [--batches N] [--seed N] \
         [--host-threads N] [--embed-dtype f32|int8] [--tables FILE] \
         [--pipeline sequential|doublebuf] [--queue-depth N] \
         [--plan FILE] [--iters N] [--warmup N] [--json FILE] [--metrics FILE]\n  \
         updlrm pack  --out FILE [--dataset TAG] [--scale N] [--seed N]\n  \
         updlrm plan  --out FILE [--dataset TAG] [--scale N] [--tables N] [--batches N] [--seed N] \
         [--ranks N] [--dpus-per-rank N] [--emt-kb N] [--host-kb N] [--replicate-top N]\n  \
         updlrm plan  --load FILE\n  \
         updlrm serve --qps N [--arrival poisson|bursty] [--max-batch N] [--max-wait-us N] \
         [--policy block|shed-oldest|reject-new] [--queue-cap N] \
         [--runtime modeled|wall] [--shards N] [--time-scale X] [--deterministic] \
         [--dataset TAG] [--strategy u|nu|ca|nur] [--dpus N] [--scale N] [--batches N] [--seed N] \
         [--host-threads N] [--workload-v3 FILE] [--replan off|periodic:N|imbalance:T[:N]] \
         [--drift-snapshot FILE] [--json FILE] [--metrics FILE]\n  \
         updlrm serve --tenants FILE.toml [--no-isolation] [--quantum-us N] [--dpus N] \
         [--json FILE] [--metrics FILE]\n  \
         updlrm capacity --tenants FILE.toml [--min-dpus N] [--max-dpus N] [--json FILE]\n  \
         updlrm stats --metrics FILE\n  \
         updlrm trace [--dataset TAG] [--scale N] [--batches N] [--seed N] \
         [--arrival poisson|bursty --qps N] [--rotate SETS:ROWS:PERIOD_US:HOT] \
         [--spike START_US:DUR_US:SET:EXTRA:BOOST] [--diurnal PERIOD_US:AMPLITUDE] --out FILE\n  \
         updlrm info  [--dataset TAG]\n\nTAG: clo home meta1 meta2 read read2 movie twitch"
    );
    std::process::exit(2)
}

struct Args {
    flags: HashMap<String, String>,
}

/// Flags that take no value (presence alone turns them on).
const BARE_FLAGS: &[&str] = &["deterministic", "no-isolation"];

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BARE_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), "true".to_string());
                } else {
                    match it.next() {
                        Some(v) => {
                            flags.insert(name.to_string(), v.clone());
                        }
                        None => usage(),
                    }
                }
            } else {
                usage();
            }
        }
        Args { flags }
    }

    fn flag_set(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn num(&self, name: &str, default: usize) -> usize {
        match self.flags.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} expects a number, got '{v}'");
                std::process::exit(2)
            }),
        }
    }

    /// A required flag that must parse as a finite, strictly positive
    /// float (rates, i.e. `--qps`).
    fn positive_float(&self, name: &str) -> f64 {
        let Some(v) = self.flags.get(name) else {
            eprintln!("--{name} is required");
            usage()
        };
        match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x > 0.0 => x,
            _ => {
                eprintln!("--{name} expects a positive number, got '{v}'");
                std::process::exit(2)
            }
        }
    }
}

/// Builds the arrival process for `serve` / `trace --arrival` from
/// `--arrival` (default poisson) and the already-parsed `--qps`.
fn arrival_or_exit(args: &Args, qps: f64) -> ArrivalProcess {
    let seed = args.num("seed", 7) as u64;
    match args.str("arrival", "poisson").as_str() {
        "poisson" => ArrivalProcess::poisson(qps, seed),
        "bursty" => ArrivalProcess::bursty(qps, seed),
        other => {
            eprintln!("unknown arrival process '{other}' (want poisson or bursty)");
            usage()
        }
    }
}

fn spec_or_exit(args: &Args) -> DatasetSpec {
    let tag = args.str("dataset", "read");
    match DatasetSpec::by_short_tag(&tag) {
        Some(s) => s,
        None => {
            eprintln!("unknown dataset '{tag}'");
            usage()
        }
    }
}

fn build_setting(
    args: &Args,
) -> Result<(DatasetSpec, Workload, Arc<Dlrm>), Box<dyn std::error::Error>> {
    let spec = spec_or_exit(args).scaled_down(args.num("scale", 200));
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: args.num("batches", 10),
            seed: args.num("seed", 7) as u64,
            ..TraceConfig::default()
        },
    );
    let model = Arc::new(Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: 32,
        table_rows: vec![spec.num_items; 8],
        bottom_hidden: vec![64],
        top_hidden: vec![64, 16],
        seed: args.num("seed", 7) as u64,
    })?);
    Ok((spec, workload, model))
}

/// Measured (host wall-clock, not modeled) timing section of the
/// `--json` report — filled in when `--iters`/`--warmup` request a
/// steady-state measurement.
#[derive(serde::Serialize)]
struct MeasuredJson {
    /// Timed passes over the batch stream.
    iters: usize,
    /// Untimed warm-up passes before measurement (the arenas and
    /// staging-slot kernels reach their high-water marks here).
    warmup: usize,
    /// Mean host wall-clock per pass (ns).
    host_wall_ns_mean: f64,
    /// Mean host wall-clock per served sample (ns).
    host_ns_per_sample: f64,
}

/// Per-stage breakdown section of the `--json` report — the JSON mirror
/// of the text output's "PIM stages" line, so the JSON report is a
/// superset of what the terminal prints (present for every PIM-backed
/// run, with or without `--iters`).
#[derive(serde::Serialize)]
struct StagesJson {
    /// Mean stage-1 (CPU→MRAM scatter) time per batch, microseconds.
    stage1_us: f64,
    /// Mean stage-2 (DPU kernel) time per batch, microseconds.
    stage2_us: f64,
    /// Mean stage-3 (MRAM→CPU gather) time per batch, microseconds.
    stage3_us: f64,
    /// Mean host routing time per batch, microseconds.
    route_us: f64,
    /// Mean host combine time per batch, microseconds.
    combine_us: f64,
    /// Stage 1's share of the embedding wall, percent.
    stage1_pct: f64,
    /// Stage 2's share of the embedding wall, percent.
    stage2_pct: f64,
    /// Stage 3's share of the embedding wall, percent.
    stage3_pct: f64,
    /// Slowest-over-mean DPU lookup cycles (1.0 = balanced).
    lookup_imbalance: f64,
    /// Wall that inter-batch pipelining saves (or would save), percent.
    pipelining_savings_pct: f64,
}

impl StagesJson {
    /// Builds the section from an accumulated breakdown over `n`
    /// batches and the stream's pipelining estimate.
    fn from_totals(pim: &EmbeddingBreakdown, n: f64, pr: &PipelineReport) -> StagesJson {
        // An empty batch stream must serialize finite zeros, never
        // 0/0 = NaN (the vendored serde would emit a "NaN" string that
        // no typed parse accepts).
        let n = n.max(1.0);
        let t = pim.total_ns();
        StagesJson {
            stage1_us: pim.stage1_ns / n / 1e3,
            stage2_us: pim.stage2_ns / n / 1e3,
            stage3_us: pim.stage3_ns / n / 1e3,
            route_us: pim.route_ns / n / 1e3,
            combine_us: pim.combine_ns / n / 1e3,
            stage1_pct: if t > 0.0 {
                100.0 * pim.stage1_ns / t
            } else {
                0.0
            },
            stage2_pct: if t > 0.0 {
                100.0 * pim.stage2_ns / t
            } else {
                0.0
            },
            stage3_pct: if t > 0.0 {
                100.0 * pim.stage3_ns / t
            } else {
                0.0
            },
            lookup_imbalance: pim.lookup_imbalance,
            pipelining_savings_pct: (1.0 - 1.0 / pr.speedup()) * 100.0,
        }
    }
}

/// Serve-schedule section of the `--json` report.
#[derive(serde::Serialize)]
struct ServeJson {
    mode: String,
    queue_depth: usize,
    wall_ns: f64,
    throughput_qps: f64,
    p50_latency_ns: f64,
    p95_latency_ns: f64,
    p99_latency_ns: f64,
    speedup_vs_sequential: f64,
}

/// Machine-readable mirror of a `run` invocation (`--json FILE`).
#[derive(serde::Serialize)]
struct RunJson {
    backend: String,
    dataset: String,
    strategy: String,
    dpus: usize,
    batches: usize,
    host_threads: usize,
    pipeline: String,
    queue_depth: usize,
    mean_embedding_us: f64,
    mean_dense_us: f64,
    mean_total_us: f64,
    stages: Option<StagesJson>,
    serve: Option<ServeJson>,
    measured: Option<MeasuredJson>,
}

fn write_json(args: &Args, report: &RunJson) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = args.flags.get("json") {
        std::fs::write(path, serde::json::to_string_pretty(report))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn write_metrics(path: &str, snapshot: &Snapshot) -> Result<(), Box<dyn std::error::Error>> {
    let mut text = serde::json::to_string_pretty(snapshot);
    text.push('\n');
    std::fs::write(path, text)?;
    println!("wrote {path}");
    Ok(())
}

fn strategy_or_exit(args: &Args) -> PartitionStrategy {
    match args.str("strategy", "ca").as_str() {
        "u" => PartitionStrategy::Uniform,
        "nu" => PartitionStrategy::NonUniform,
        "ca" => PartitionStrategy::CacheAware,
        "nur" => PartitionStrategy::Replicated,
        other => {
            eprintln!("unknown strategy '{other}'");
            usage()
        }
    }
}

/// Reads and validates a placement plan, refusing foreign schema
/// versions with exit 2 before any field-level decoding (the same
/// contract `stats` applies to metrics snapshots).
fn load_plan_or_exit(path: &str) -> PlacementPlan {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read placement plan {path}: {e}");
            std::process::exit(2)
        }
    };
    match PlacementPlan::from_json(&text) {
        Ok(p) => p,
        Err(PlanError::SchemaVersion { found, expected }) => {
            eprintln!(
                "placement plan {path} has schema v{found}, but this binary reads v{expected}; \
                 regenerate it with `updlrm plan --out {path}`",
            );
            std::process::exit(2)
        }
        Err(e) => {
            eprintln!("invalid placement plan {path}: {e}");
            std::process::exit(2)
        }
    }
}

fn print_plan_summary(path: &str, plan: &PlacementPlan) {
    let host: usize = plan.tables.iter().map(|t| t.host_rows.len()).sum();
    let rep: usize = plan.tables.iter().map(|t| t.replicated_rows.len()).sum();
    let total = plan.total_rows();
    let parts: usize = plan.tables.iter().map(|t| t.parts).sum();
    println!(
        "placement plan {path} (schema v{}, planner seed {})",
        plan.schema_version, plan.config.seed,
    );
    println!(
        "  fleet: {} ranks x {} DPUs, {} DPUs used across {} cold partitions",
        plan.config.topology.nr_ranks, plan.config.topology.dpus_per_rank, plan.dpus_used, parts,
    );
    println!(
        "  tiers: {} host / {} replicated / {} cold of {} rows over {} tables",
        host,
        rep,
        total - host - rep,
        total,
        plan.tables.len(),
    );
    println!(
        "  estimate: tiered {:.1} us vs pure-MRAM {:.1} us per batch ({:.2}x), \
         {} of {} ranks touched",
        plan.est.tiered_batch_ns / 1e3,
        plan.est.mram_batch_ns / 1e3,
        plan.est.mram_batch_ns / plan.est.tiered_batch_ns.max(f64::MIN_POSITIVE),
        plan.est.ranks_touched,
        plan.config.topology.nr_ranks,
    );
    println!(
        "  rank balance: bound {:.1}, capacity binding {}",
        plan.balance_bound, plan.rank_capacity_binding,
    );
}

/// Parses `--embed-dtype` (default f32) into the EMT storage dtype.
fn embed_dtype_or_exit(args: &Args) -> EmbedDtype {
    let v = args.str("embed-dtype", "f32");
    match EmbedDtype::parse(&v) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2)
        }
    }
}

/// Opens a packed table file, refusing foreign formats/versions and
/// corrupt payloads with exit 2 before any row is consumed (the same
/// contract `plan --load` and `stats` apply to their inputs).
fn load_packed_or_exit(path: &str) -> PackedTables {
    match PackedTables::open(path) {
        Ok(p) => p,
        Err(PackError::UnsupportedVersion(found)) => {
            eprintln!(
                "packed tables {path} use format v{found}, but this binary reads v1; \
                 regenerate them with `updlrm pack --out {path}`",
            );
            std::process::exit(2)
        }
        Err(e) => {
            eprintln!("invalid packed tables {path}: {e}");
            std::process::exit(2)
        }
    }
}

/// `updlrm pack`: write the deterministic embedding tables for a
/// dataset/scale/seed to the page-aligned on-disk format, so later
/// `run --tables FILE` invocations mmap them instead of regenerating.
/// Rows are always stored as f32 — int8 quantization happens at engine
/// load, so one packed file serves both `--embed-dtype` modes.
fn cmd_pack(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let Some(out) = args.flags.get("out") else {
        eprintln!("pack needs --out FILE");
        usage()
    };
    let (spec, _, model) = build_setting(args)?;
    save_packed(model.tables(), out)?;
    let bytes: usize = model.tables().iter().map(|t| t.rows() * t.dim() * 4).sum();
    println!(
        "packed {} tables ({} rows x {} dims, {:.1} MB) for {} to {out}",
        model.tables().len(),
        spec.num_items,
        model.tables()[0].dim(),
        bytes as f64 / 1e6,
        spec.name,
    );
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = args.flags.get("load") {
        let plan = load_plan_or_exit(path);
        print_plan_summary(path, &plan);
        return Ok(());
    }
    let Some(out) = args.flags.get("out") else {
        eprintln!("plan needs --out FILE (write a new plan) or --load FILE (inspect one)");
        usage()
    };
    let scale = args.num("scale", 200);
    let spec = spec_or_exit(args).scaled_down(scale);
    let num_tables = args.num("tables", 8);
    let num_batches = args.num("batches", 10);
    let seed = args.num("seed", 7) as u64;
    let dim = 32;
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables,
            num_batches,
            seed,
            ..TraceConfig::default()
        },
    );
    let profiles: Vec<FreqProfile> = (0..num_tables)
        .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
        .collect();
    let catalog = Catalog::homogeneous(num_tables, spec.num_items, dim);
    let defaults = PlannerConfig::default();
    let config = PlannerConfig {
        topology: RankTopology {
            nr_ranks: args.num("ranks", defaults.topology.nr_ranks),
            dpus_per_rank: args.num("dpus-per-rank", defaults.topology.dpus_per_rank),
        },
        emt_capacity_bytes: args.num("emt-kb", defaults.emt_capacity_bytes / 1024) * 1024,
        host_cache_bytes: args.num("host-kb", defaults.host_cache_bytes / 1024) * 1024,
        replicate_top: args.num("replicate-top", defaults.replicate_top),
        seed,
        ..defaults
    };
    let mut plan = plan_placement(&catalog, &profiles, &config)?;
    plan.provenance = PlanProvenance {
        scale: scale as u64,
        tables: num_tables,
        batches: num_batches,
        seed,
        dim,
    };
    std::fs::write(out, plan.to_json())?;
    println!("wrote {out}");
    print_plan_summary(out, &plan);
    Ok(())
}

/// The `run --plan FILE` path: rebuild the plan's workload from its
/// provenance (plus the `--dataset` flag) and serve the trace through
/// the tiered multi-rank engine.
fn cmd_run_plan(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let backend_name = args.str("backend", "updlrm");
    if backend_name != "updlrm" {
        eprintln!("--plan requires --backend updlrm (got '{backend_name}')");
        std::process::exit(2)
    }
    if args.flag_set("embed-dtype") || args.flag_set("tables") {
        // The tiered plan engine stores all tiers as f32 and rebuilds
        // its tables from the plan's provenance; refusing here beats
        // silently ignoring the flags.
        eprintln!("--embed-dtype / --tables do not apply to `run --plan`");
        std::process::exit(2)
    }
    let path = args.flags.get("plan").expect("cmd_run checked --plan");
    let plan = load_plan_or_exit(path);
    let prov = plan.provenance.clone();
    let spec = spec_or_exit(args).scaled_down(prov.scale as usize);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: prov.tables,
            num_batches: prov.batches,
            seed: prov.seed,
            ..TraceConfig::default()
        },
    );
    let model = Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: prov.dim,
        table_rows: vec![spec.num_items; prov.tables],
        bottom_hidden: vec![64],
        top_hidden: vec![64, 16],
        seed: prov.seed,
    })?;
    let mut config = UpdlrmConfig {
        batch_size: workload.config.batch_size,
        ..UpdlrmConfig::default()
    };
    config.host_threads = args.num("host-threads", config.host_threads);
    let metrics_path = args.flags.get("metrics").cloned();
    config.telemetry = metrics_path.is_some();
    let iters = args.num("iters", 1);
    let warmup = args.num("warmup", 0);
    if iters == 0 {
        eprintln!("--iters must be >= 1 (0 measures nothing)");
        std::process::exit(2)
    }
    let print_measured = args.flags.contains_key("iters") || args.flags.contains_key("warmup");
    let mut engine = TieredEngine::new(config.clone(), &plan, model.tables())?;

    let host: usize = plan.tables.iter().map(|t| t.host_rows.len()).sum();
    let rep: usize = plan.tables.iter().map(|t| t.replicated_rows.len()).sum();
    println!(
        "UpDLRM (tiered plan) on {} ({} items/table, {} batches of {})",
        spec.name,
        spec.num_items,
        workload.batches.len(),
        workload.config.batch_size,
    );
    println!(
        "  plan {path}: {} ranks x {} DPUs ({} used), {} host / {} replicated / {} cold rows",
        plan.config.topology.nr_ranks,
        plan.config.topology.dpus_per_rank,
        plan.dpus_used,
        host,
        rep,
        plan.total_rows() - host - rep,
    );

    for _ in 0..warmup {
        engine.serve_stream(&workload.batches, |_, _, _| {})?;
    }
    let mut breakdowns: Vec<EmbeddingBreakdown> = Vec::new();
    let t0 = std::time::Instant::now();
    for pass in 0..iters {
        engine.serve_stream(&workload.batches, |_, _, bd| {
            if pass == 0 {
                breakdowns.push(*bd);
            }
        })?;
    }
    let host_wall_ns_mean = t0.elapsed().as_nanos() as f64 / iters as f64;
    let samples: usize = workload.batches.iter().map(|b| b.batch_size()).sum();

    let mut pim_total = EmbeddingBreakdown::default();
    for bd in &breakdowns {
        pim_total.accumulate(bd);
    }
    let n = (breakdowns.len() as f64).max(1.0);
    println!("per-batch mean:");
    println!("  embedding: {:10.1} us", pim_total.total_ns() / n / 1e3);
    let lookups = pim_total.cache_hits + pim_total.emt_lookups;
    if lookups > 0 {
        println!(
            "  tier routing: {} host hits, {} PIM lookups ({:.1}% served from host DRAM)",
            pim_total.cache_hits,
            pim_total.emt_lookups,
            100.0 * pim_total.cache_hits as f64 / lookups as f64,
        );
    }
    let t = pim_total.total_ns().max(f64::MIN_POSITIVE);
    println!(
        "  PIM stages: s1 {:.0}% / s2 {:.0}% / s3 {:.0}%  (imbalance {:.2})",
        100.0 * pim_total.stage1_ns / t,
        100.0 * pim_total.stage2_ns / t,
        100.0 * pim_total.stage3_ns / t,
        pim_total.lookup_imbalance,
    );
    if print_measured {
        println!(
            "  host wall (measured): {:.1} us/pass  {:.1} ns/sample  \
             ({iters} timed passes, {warmup} warm-up)",
            host_wall_ns_mean / 1e3,
            host_wall_ns_mean / samples.max(1) as f64,
        );
    }

    let pr = PipelineReport::from_batches(&breakdowns);
    let report_json = RunJson {
        backend: "updlrm".to_string(),
        dataset: spec.short.to_string(),
        strategy: "plan".to_string(),
        dpus: plan.dpus_used,
        batches: workload.batches.len(),
        host_threads: config.host_threads,
        pipeline: "sequential".to_string(),
        queue_depth: 1,
        mean_embedding_us: pim_total.total_ns() / n / 1e3,
        mean_dense_us: 0.0,
        mean_total_us: pim_total.total_ns() / n / 1e3,
        stages: Some(StagesJson::from_totals(&pim_total, n, &pr)),
        serve: None,
        measured: Some(MeasuredJson {
            iters,
            warmup,
            host_wall_ns_mean,
            host_ns_per_sample: host_wall_ns_mean / samples.max(1) as f64,
        }),
    };
    write_json(args, &report_json)?;
    if let Some(path) = &metrics_path {
        write_metrics(path, &engine.metrics_snapshot())?;
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if args.flag_set("plan") {
        return cmd_run_plan(args);
    }
    let (spec, workload, mut model) = build_setting(args)?;
    if let Some(path) = args.flags.get("tables") {
        let packed = load_packed_or_exit(path);
        let dlrm = Arc::get_mut(&mut model).expect("model not yet shared");
        let want: Vec<(usize, usize)> = dlrm.tables().iter().map(|t| (t.rows(), t.dim())).collect();
        let got: Vec<(usize, usize)> = (0..packed.len())
            .map(|t| (packed.view(t).rows(), packed.view(t).dim()))
            .collect();
        if want != got {
            eprintln!(
                "packed tables {path} do not match this run's model shape \
                 (packed {got:?}, model wants {want:?}); \
                 regenerate them with `updlrm pack` at the same --dataset/--scale/--seed",
            );
            std::process::exit(2)
        }
        for (slot, view) in dlrm.tables_mut().iter_mut().zip(packed.views()) {
            *slot = EmbeddingTable::from_view(&view)?;
        }
    }
    let profiles: Vec<FreqProfile> = (0..8)
        .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
        .collect();
    let strategy = strategy_or_exit(args);
    let mut config = UpdlrmConfig::with_dpus(args.num("dpus", 256), strategy);
    config.embed_dtype = embed_dtype_or_exit(args);
    match args.str("nc", "auto").as_str() {
        "auto" => {}
        v => config.n_c = Some(v.parse()?),
    }
    config.host_threads = args.num("host-threads", config.host_threads);
    let pipeline: PipelineMode = match args.str("pipeline", "sequential").parse() {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    };
    let queue_depth = args.num("queue-depth", config.queue_depth);
    if queue_depth == 0 {
        eprintln!("--queue-depth must be >= 1 (0 admits no batch in flight)");
        std::process::exit(2)
    }
    config.pipeline_mode = pipeline;
    config.queue_depth = queue_depth;
    let metrics_path = args.flags.get("metrics").cloned();
    if metrics_path.is_some() {
        // Fleet telemetry lives in the PIM engine; the CPU/GPU
        // baselines have no DPUs to report on.
        let backend_name = args.str("backend", "updlrm");
        if backend_name != "updlrm" {
            eprintln!("--metrics requires --backend updlrm (got '{backend_name}')");
            std::process::exit(2)
        }
        config.telemetry = true;
    }
    let iters = args.num("iters", 1);
    let warmup = args.num("warmup", 0);
    // Measured wall-clock is nondeterministic; keep default stdout
    // byte-stable (the host-threads determinism diff depends on it) and
    // only print the measured line when measurement was asked for. The
    // --json report always carries it.
    let print_measured = args.flags.contains_key("iters") || args.flags.contains_key("warmup");
    if iters == 0 {
        eprintln!("--iters must be >= 1 (0 measures nothing)");
        std::process::exit(2)
    }
    let mut report_json = RunJson {
        backend: args.str("backend", "updlrm"),
        dataset: spec.short.to_string(),
        strategy: args.str("strategy", "ca"),
        dpus: config.nr_dpus,
        batches: workload.batches.len(),
        host_threads: config.host_threads,
        pipeline: pipeline.to_string(),
        queue_depth,
        mean_embedding_us: 0.0,
        mean_dense_us: 0.0,
        mean_total_us: 0.0,
        stages: None,
        serve: None,
        measured: None,
    };
    let mem = CpuMemoryModel::default();

    if pipeline == PipelineMode::DoubleBuf {
        // The double-buffered schedule lives in the PIM embedding
        // engine; it has no meaning for the CPU/GPU baselines.
        if report_json.backend != "updlrm" {
            eprintln!(
                "--pipeline doublebuf requires --backend updlrm (got '{}')",
                report_json.backend
            );
            std::process::exit(2)
        }
        let mut backend = UpdlrmBackend::from_workload(config, model.clone(), &workload, mem)?;
        // Warm-up passes fill the scratch arenas and both staging
        // slots' kernels; the timed passes then run the zero-allocation
        // `serve_stream` path, so `host_ns_per_sample` reflects the
        // steady state rather than first-batch growth.
        for _ in 0..warmup {
            backend
                .engine_mut()
                .serve_stream(&workload.batches, |_, _, _| {})?;
        }
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            backend
                .engine_mut()
                .serve_stream(&workload.batches, |_, _, _| {})?;
        }
        let host_wall_ns_mean = t0.elapsed().as_nanos() as f64 / iters as f64;
        let outcome = backend.engine_mut().serve(&workload.batches)?;
        let samples = outcome.report.samples.max(1) as f64;
        report_json.measured = Some(MeasuredJson {
            iters,
            warmup,
            host_wall_ns_mean,
            host_ns_per_sample: host_wall_ns_mean / samples,
        });
        let n = outcome.report.batches.max(1) as f64;
        let mean_embedding_ns = outcome.breakdowns.iter().map(|b| b.total_ns()).sum::<f64>() / n;
        let pr = PipelineReport::from_batches(&outcome.breakdowns);
        println!(
            "{} serving {} batches double-buffered (queue depth {})",
            backend.name(),
            outcome.report.batches,
            outcome.report.queue_depth,
        );
        println!(
            "  wall {:.1} us  throughput {:.0} samples/s",
            outcome.report.wall_ns / 1e3,
            outcome.report.throughput_qps,
        );
        println!(
            "  latency p50 {:.1} us  p95 {:.1} us  p99 {:.1} us",
            outcome.report.p50_latency_ns / 1e3,
            outcome.report.p95_latency_ns / 1e3,
            outcome.report.p99_latency_ns / 1e3,
        );
        println!("  speedup over back-to-back: {:.2}x", pr.speedup());
        if print_measured {
            println!(
                "  host wall (measured): {:.1} us/pass  {:.1} ns/sample  \
                 ({iters} timed passes, {warmup} warm-up)",
                host_wall_ns_mean / 1e3,
                host_wall_ns_mean / samples,
            );
        }
        report_json.mean_embedding_us = mean_embedding_ns / 1e3;
        report_json.mean_total_us = mean_embedding_ns / 1e3;
        let mut pim_total = EmbeddingBreakdown::default();
        for bd in &outcome.breakdowns {
            pim_total.accumulate(bd);
        }
        report_json.stages = Some(StagesJson::from_totals(&pim_total, n, &pr));
        report_json.serve = Some(ServeJson {
            mode: outcome.report.mode.to_string(),
            queue_depth: outcome.report.queue_depth,
            wall_ns: outcome.report.wall_ns,
            throughput_qps: outcome.report.throughput_qps,
            p50_latency_ns: outcome.report.p50_latency_ns,
            p95_latency_ns: outcome.report.p95_latency_ns,
            p99_latency_ns: outcome.report.p99_latency_ns,
            speedup_vs_sequential: pr.speedup(),
        });
        write_json(args, &report_json)?;
        if let Some(path) = &metrics_path {
            write_metrics(path, &backend.engine().metrics_snapshot())?;
        }
        return Ok(());
    }
    let mut backend: Box<dyn InferenceBackend> = match args.str("backend", "updlrm").as_str() {
        "updlrm" => Box::new(UpdlrmBackend::from_workload(
            config,
            model.clone(),
            &workload,
            mem,
        )?),
        "cpu" => Box::new(DlrmCpu::new(model.clone(), &profiles, mem)?),
        "hybrid" => Box::new(DlrmHybrid::new(
            model.clone(),
            &profiles,
            mem,
            GpuModel::default(),
        )?),
        "fae" => Box::new(Fae::new(
            model.clone(),
            &profiles,
            mem,
            GpuModel::default(),
            0.85,
        )?),
        "hetero" => Box::new(DpuGpuHetero::from_workload(
            config,
            model.clone(),
            &workload,
            GpuModel::default(),
        )?),
        other => {
            eprintln!("unknown backend '{other}'");
            usage()
        }
    };

    println!(
        "{} on {} ({} items/table, avg reduction {:.1}, {} batches of {})",
        backend.name(),
        spec.name,
        spec.num_items,
        workload.measured_avg_reduction(),
        workload.batches.len(),
        workload.config.batch_size,
    );
    for _ in 0..warmup {
        for batch in &workload.batches {
            backend.run_batch(batch)?;
        }
    }
    let mut total = LatencyReport::default();
    let mut breakdowns = Vec::new();
    let t0 = std::time::Instant::now();
    for pass in 0..iters {
        for batch in &workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            // Modeled breakdowns repeat identically per pass; keep one
            // pass's worth so the pipelining estimate stays per-stream.
            if pass == 0 {
                if let Some(pim) = report.pim {
                    breakdowns.push(pim);
                }
            }
            total.accumulate(&report);
        }
    }
    let host_wall_ns_mean = t0.elapsed().as_nanos() as f64 / iters as f64;
    let samples: usize = workload.batches.iter().map(|b| b.batch_size()).sum();
    report_json.measured = Some(MeasuredJson {
        iters,
        warmup,
        host_wall_ns_mean,
        host_ns_per_sample: host_wall_ns_mean / samples.max(1) as f64,
    });
    // `--batches 0` is a legal (if degenerate) run: divide by at least
    // one so every derived mean serializes as a finite zero.
    let n = ((workload.batches.len() * iters) as f64).max(1.0);
    println!("per-batch mean:");
    println!("  embedding: {:10.1} us", total.embedding_ns / n / 1e3);
    println!("  dense:     {:10.1} us", total.dense_ns / n / 1e3);
    println!("  transfer:  {:10.1} us", total.transfer_ns / n / 1e3);
    println!("  total:     {:10.1} us", total.total_ns() / n / 1e3);
    if print_measured {
        println!(
            "  host wall (measured): {:.1} us/pass  {:.1} ns/sample  \
             ({iters} timed passes, {warmup} warm-up)",
            host_wall_ns_mean / 1e3,
            host_wall_ns_mean / samples.max(1) as f64,
        );
    }
    report_json.mean_embedding_us = total.embedding_ns / n / 1e3;
    report_json.mean_dense_us = total.dense_ns / n / 1e3;
    report_json.mean_total_us = total.total_ns() / n / 1e3;
    if let Some(pim) = &total.pim {
        let t = pim.total_ns();
        println!(
            "  PIM stages: s1 {:.0}% / s2 {:.0}% / s3 {:.0}%  (imbalance {:.2})",
            100.0 * pim.stage1_ns / t,
            100.0 * pim.stage2_ns / t,
            100.0 * pim.stage3_ns / t,
            pim.lookup_imbalance,
        );
        let pr = PipelineReport::from_batches(&breakdowns);
        println!(
            "  inter-batch pipelining would save {:.1}%",
            (1.0 - 1.0 / pr.speedup()) * 100.0
        );
        report_json.stages = Some(StagesJson::from_totals(pim, n, &pr));
    }
    write_json(args, &report_json)?;
    if let Some(path) = &metrics_path {
        let snapshot = backend
            .metrics_snapshot()
            .expect("--metrics was validated to require the updlrm backend");
        write_metrics(path, &snapshot)?;
    }
    Ok(())
}

/// Machine-readable mirror of a `serve` invocation (`--json FILE`).
/// With the default `--runtime modeled` everything inside is
/// modeled-time derived, so the file is byte-identical across runs with
/// the same flags; a `--runtime wall` run adds the `runtime` section,
/// whose measured wall-clock numbers vary run to run.
#[derive(serde::Serialize)]
struct SchedJson {
    dataset: String,
    strategy: String,
    dpus: usize,
    arrival: String,
    offered_qps: f64,
    max_batch: usize,
    max_wait_us: usize,
    queue_cap: usize,
    policy: String,
    report: SchedReport,
    /// `batch_hist[k]` = batches launched with exactly `k` queries.
    batch_hist: Vec<u64>,
    /// Present only for `--runtime wall`: measured statistics from the
    /// concurrent runtime next to the modeled oracle it is locked to.
    runtime: Option<RuntimeJson>,
}

/// The wall-clock section of [`SchedJson`].
#[derive(serde::Serialize)]
struct RuntimeJson {
    shards: usize,
    time_scale: f64,
    deterministic: bool,
    wall: WallStats,
    /// What the modeled-time oracle (`Scheduler::run`) predicts for the
    /// same trace and policy.
    modeled_report: SchedReport,
    batches_per_shard: Vec<u64>,
}

/// Loads and parses a `--tenants FILE.toml`, applying the CLI
/// overrides (`--dpus`, `--quantum-us`, `--no-isolation`), or exits 2.
fn tenants_file_or_exit(args: &Args, path: &str) -> TenantsFile {
    for bad in [
        "qps",
        "arrival",
        "workload-v3",
        "replan",
        "runtime",
        "shards",
        "time-scale",
        "deterministic",
        "drift-snapshot",
        "dataset",
        "strategy",
        "scale",
        "batches",
        "seed",
        "max-batch",
        "max-wait-us",
        "policy",
        "queue-cap",
        "embed-dtype",
    ] {
        if args.flag_set(bad) {
            eprintln!(
                "--{bad} does not apply with --tenants (per-tenant settings live in the file)"
            );
            std::process::exit(2)
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--tenants {path}: {e}");
            std::process::exit(2)
        }
    };
    let mut file = match parse_tenants_toml(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("--tenants {path}: {e}");
            std::process::exit(2)
        }
    };
    if args.flag_set("dpus") {
        file.fleet.fleet_dpus = args.num("dpus", file.fleet.fleet_dpus);
    }
    if args.flag_set("quantum-us") {
        file.fleet.quantum_ns = args.num("quantum-us", 0) as u64 * 1_000;
    }
    if args.flag_set("no-isolation") {
        file.fleet.arbitration = Arbitration::Fcfs;
    }
    if let Err(e) = file.fleet.validate() {
        eprintln!("--tenants {path}: {e}");
        std::process::exit(2)
    }
    file
}

/// `updlrm serve --tenants FILE.toml`: the mixed multi-tenant workload
/// end to end on one shared modeled fleet.
fn cmd_serve_tenants(args: &Args, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut file = tenants_file_or_exit(args, path);
    let metrics_path = args.flags.get("metrics").cloned();
    if metrics_path.is_some() {
        file.fleet.telemetry = true;
    }
    let mut fleet = TenantFleet::from_specs(&file.tenants, file.fleet.clone())?;
    let report = fleet.run(|_, _, _, _, _| {})?;

    println!(
        "multi-tenant serve: {} tenants on a {}-DPU fleet [{}], makespan {:.1} ms, \
         fleet utilization {:.2}",
        report.tenants.len(),
        report.fleet_dpus,
        report.arbitration,
        report.makespan_ns / 1e6,
        report.fleet_utilization,
    );
    for t in &report.tenants {
        let slo = if t.slo_p99_ns > 0.0 {
            format!(
                "slo {:.0} us ({} violations)",
                t.slo_p99_ns / 1e3,
                t.slo_violations
            )
        } else {
            "no slo".to_string()
        };
        println!(
            "  {} (w {:.1}, dpu offset {}): p50 {:.1} us  p99 {:.1} us  {}  \
             share {:.2} (configured {:.2})",
            t.name,
            t.weight,
            t.dpu_offset,
            t.sched.p50_latency_ns / 1e3,
            t.sched.p99_latency_ns / 1e3,
            slo,
            t.fleet_share_achieved,
            t.fleet_share_configured,
        );
        println!(
            "    {} batches, {} completed / {} offered ({} shed, {} rejected, {} blocked)",
            t.sched.batches,
            t.sched.completed,
            t.sched.requests,
            t.sched.shed,
            t.sched.rejected,
            t.sched.blocked,
        );
    }
    if let Some(path) = args.flags.get("json") {
        std::fs::write(path, serde::json::to_string_pretty(&report))?;
        println!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        write_metrics(path, &fleet.metrics_snapshot())?;
    }
    Ok(())
}

/// `updlrm capacity --tenants FILE.toml`: answers "how many DPUs do
/// these tenants need at these SLOs?" with a doubling sweep of fleet
/// sizes through the full cost model.
fn cmd_capacity(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.flags.get("tenants").cloned() else {
        eprintln!("updlrm capacity needs --tenants FILE.toml");
        std::process::exit(2)
    };
    let file = tenants_file_or_exit(args, &path);
    let min_dpus = args.num("min-dpus", 8);
    let max_dpus = args.num("max-dpus", 256);
    if min_dpus == 0 || min_dpus > max_dpus {
        eprintln!("need 1 <= --min-dpus <= --max-dpus (got {min_dpus}..{max_dpus})");
        std::process::exit(2)
    }
    let mut candidates = Vec::new();
    let mut c = min_dpus;
    while c < max_dpus {
        candidates.push(c);
        c = c.saturating_mul(2);
    }
    candidates.push(max_dpus);

    let points = capacity_sweep(&file.tenants, &file.fleet, &candidates)?;
    println!(
        "capacity sweep for {} tenants [{}], fleets {}..{} DPUs:",
        file.tenants.len(),
        file.fleet.arbitration,
        min_dpus,
        max_dpus,
    );
    for p in &points {
        if !p.feasible {
            println!(
                "  {:>5} DPUs: infeasible (no tile shape fits)",
                p.fleet_dpus
            );
            continue;
        }
        let verdict = if p.all_slos_met { "PASS" } else { "fail" };
        let detail: Vec<String> = p
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{} p99 {:.0} us{}",
                    t.name,
                    t.p99_latency_ns / 1e3,
                    if t.met { "" } else { " *" }
                )
            })
            .collect();
        println!(
            "  {:>5} DPUs: {}  ({})",
            p.fleet_dpus,
            verdict,
            detail.join(", ")
        );
    }
    if let Some(json_path) = args.flags.get("json") {
        std::fs::write(json_path, serde::json::to_string_pretty(&points))?;
        println!("wrote {json_path}");
    }
    match points.iter().find(|p| p.all_slos_met) {
        Some(p) => {
            println!(
                "smallest swept fleet meeting every SLO: {} DPUs",
                p.fleet_dpus
            );
        }
        None => {
            println!("no swept fleet size up to {max_dpus} DPUs meets every SLO");
            std::process::exit(1)
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = args.flags.get("tenants").cloned() {
        return cmd_serve_tenants(args, &path);
    }
    if args.flag_set("no-isolation") || args.flag_set("quantum-us") {
        eprintln!("--no-isolation / --quantum-us only apply to --tenants serving");
        std::process::exit(2)
    }
    let workload_path = args.flags.get("workload-v3").cloned();
    if workload_path.is_some() && (args.flag_set("qps") || args.flag_set("arrival")) {
        eprintln!(
            "--workload-v3 replays the file's stamped arrivals; --qps/--arrival do not apply"
        );
        std::process::exit(2)
    }
    let max_batch = args.num("max-batch", 64);
    if max_batch == 0 {
        eprintln!("--max-batch must be >= 1 (a batcher that forms empty batches serves nothing)");
        std::process::exit(2)
    }
    let max_wait_us = args.num("max-wait-us", 200);
    if max_wait_us == 0 {
        eprintln!("--max-wait-us must be >= 1 (a zero deadline degenerates to batch-of-one)");
        std::process::exit(2)
    }
    let queue_cap = args.num("queue-cap", 4 * max_batch);
    if queue_cap == 0 {
        eprintln!("--queue-cap must be >= 1 (a zero-length queue admits nothing)");
        std::process::exit(2)
    }
    let policy: OverloadPolicy = match args.str("policy", "shed-oldest").parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    };

    let replan: ReplanPolicy = match args.str("replan", "off").parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("--replan: {e}");
            std::process::exit(2)
        }
    };
    let drift_snapshot_path = args.flags.get("drift-snapshot").cloned();
    if drift_snapshot_path.is_some() && !replan.enabled() {
        eprintln!("--drift-snapshot needs --replan (a static placement never migrates)");
        std::process::exit(2)
    }

    let runtime_mode = args.str("runtime", "modeled");
    let shards = args.num("shards", 1);
    let deterministic = args.flag_set("deterministic");
    let time_scale = if args.flag_set("time-scale") {
        args.positive_float("time-scale")
    } else {
        1.0
    };
    match runtime_mode.as_str() {
        "modeled" => {
            if args.flag_set("shards") || args.flag_set("time-scale") || deterministic {
                eprintln!("--shards / --time-scale / --deterministic only apply to --runtime wall");
                std::process::exit(2)
            }
        }
        "wall" => {
            if shards == 0 {
                eprintln!(
                    "--shards must be >= 1 (a runtime with no engine workers serves nothing)"
                );
                std::process::exit(2)
            }
            if replan.enabled() {
                eprintln!(
                    "--replan: replanning requires the modeled runtime (--runtime modeled); \
                     the wall runtime's shards serve from static placements"
                );
                std::process::exit(2)
            }
        }
        other => {
            eprintln!("unknown runtime '{other}' (want modeled or wall)");
            usage()
        }
    }

    let (spec, workload, model) = if let Some(path) = &workload_path {
        // A stamped UPWL file (v1/v2/v3) replayed as-is: the loader
        // already validated the drift schedule against the embedded
        // spec's row count, and a file without arrivals cannot be
        // served open-loop.
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("--workload-v3 {path}: {e}");
                std::process::exit(2)
            }
        };
        let workload = match Workload::load(&mut file) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("--workload-v3 {path}: {e}");
                std::process::exit(2)
            }
        };
        if workload.arrivals.process.is_closed_loop() {
            eprintln!(
                "--workload-v3 {path}: the trace has no arrival stamps; regenerate it with \
                 `updlrm trace --qps N` (serving needs open-loop arrivals)"
            );
            std::process::exit(2)
        }
        let spec = workload.spec.clone();
        let model = Arc::new(Dlrm::new(DlrmConfig {
            num_dense: 13,
            embedding_dim: 32,
            table_rows: vec![spec.num_items; workload.config.num_tables],
            bottom_hidden: vec![64],
            top_hidden: vec![64, 16],
            seed: args.num("seed", 7) as u64,
        })?);
        (spec, workload, model)
    } else {
        let qps = args.positive_float("qps");
        let process = arrival_or_exit(args, qps);
        let (spec, mut workload, model) = build_setting(args)?;
        workload.stamp_arrivals(process);
        (spec, workload, model)
    };
    let process = workload.arrivals.process;
    let qps = process.offered_qps().unwrap_or(0.0);

    let mut config = UpdlrmConfig::with_dpus(args.num("dpus", 256), strategy_or_exit(args));
    // The batcher never forms more than `max_batch` queries, so size the
    // engine's staging slots to exactly that.
    config.batch_size = max_batch;
    config.host_threads = args.num("host-threads", config.host_threads);
    config.replan = replan;
    let metrics_path = args.flags.get("metrics").cloned();
    // Replanning implies telemetry: the drift counters (and the
    // mid-migration snapshot `--drift-snapshot` writes) live in the
    // metrics registry.
    config.telemetry = metrics_path.is_some() || replan.enabled();
    let sched_config = SchedConfig {
        max_batch_size: max_batch,
        max_wait_ns: max_wait_us as u64 * 1_000,
        queue_cap,
        policy,
    };

    if runtime_mode == "wall" {
        return serve_wall(ServeWall {
            args,
            spec: &spec,
            workload: &workload,
            model: &model,
            config,
            sched_config,
            shards,
            time_scale,
            deterministic,
            qps,
            metrics_path,
        });
    }

    let mut engine = UpdlrmEngine::from_workload(config, model.tables(), &workload)?;
    let mut sched = Scheduler::new(sched_config)?;
    let report = sched.run(&mut engine, &workload, |_, _, _, _| {})?;

    println!(
        "open-loop serve on {} ({} arrivals, {} over {:.1} ms of modeled time)",
        spec.name,
        report.requests,
        process.tag(),
        report.makespan_ns / 1e6,
    );
    println!(
        "  load: offered {:.0} qps  achieved {:.0} qps",
        report.offered_qps, report.achieved_qps,
    );
    println!(
        "  latency: mean {:.1} us  p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  max {:.1} us",
        report.mean_latency_ns / 1e3,
        report.p50_latency_ns / 1e3,
        report.p95_latency_ns / 1e3,
        report.p99_latency_ns / 1e3,
        report.max_latency_ns / 1e3,
    );
    println!(
        "  batching: {} batches, mean fill {:.1}/{}  (size {} / deadline {} / drain {})",
        report.batches,
        report.mean_batch_size,
        max_batch,
        report.trigger_size,
        report.trigger_deadline,
        report.trigger_drain,
    );
    println!(
        "  admission [{}]: {} admitted, {} shed, {} rejected, {} blocked, queue high-water {}/{}",
        policy,
        report.admitted,
        report.shed,
        report.rejected,
        report.blocked,
        report.queue_high_water,
        queue_cap,
    );
    if replan.enabled() {
        let d = engine.metrics_snapshot().drift;
        println!(
            "  replan [{}]: {} replans ({} skipped), {} migrations, {} rows / {:.1} KB moved, \
             {:.1} us migrating",
            replan,
            d.replans_triggered,
            d.replans_skipped,
            d.migrations_completed,
            d.rows_moved,
            d.migrated_bytes as f64 / 1e3,
            d.migration_ns / 1e3,
        );
    }

    if let Some(path) = args.flags.get("json") {
        let json = SchedJson {
            dataset: spec.short.to_string(),
            strategy: args.str("strategy", "ca"),
            dpus: args.num("dpus", 256),
            arrival: process.tag().to_string(),
            offered_qps: qps,
            max_batch,
            max_wait_us,
            queue_cap,
            policy: policy.to_string(),
            report,
            batch_hist: sched.batch_histogram().to_vec(),
            runtime: None,
        };
        std::fs::write(path, serde::json::to_string_pretty(&json))?;
        println!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        write_metrics(path, &engine.metrics_snapshot())?;
    }
    if let Some(path) = &drift_snapshot_path {
        match engine.drift_snapshot() {
            Some(snap) => {
                std::fs::write(path, serde::json::to_string_pretty(snap))?;
                println!("wrote {path}");
            }
            None => {
                eprintln!(
                    "no migration was triggered, so there is no mid-migration snapshot to \
                     write; serve longer or lower the --replan period/threshold"
                );
                std::process::exit(1)
            }
        }
    }
    Ok(())
}

/// Everything `serve_wall` needs from `cmd_serve`, bundled so the
/// hand-off stays readable.
struct ServeWall<'a> {
    args: &'a Args,
    spec: &'a DatasetSpec,
    workload: &'a Workload,
    model: &'a Dlrm,
    config: UpdlrmConfig,
    sched_config: SchedConfig,
    shards: usize,
    time_scale: f64,
    deterministic: bool,
    qps: f64,
    metrics_path: Option<String>,
}

/// The `--runtime wall` path: run the modeled oracle first, then the
/// concurrent wall-clock runtime on `--shards` engine workers, and
/// print the two side by side. In `--deterministic` mode the runtime
/// must reproduce the oracle's `SchedReport` byte for byte.
fn serve_wall(p: ServeWall<'_>) -> Result<(), Box<dyn std::error::Error>> {
    let ServeWall {
        args,
        spec,
        workload,
        model,
        config,
        sched_config,
        shards,
        time_scale,
        deterministic,
        qps,
        metrics_path,
    } = p;

    // The modeled oracle: same trace, same policy, telemetry off so the
    // measured engines own the metrics registry.
    let mut oracle_config = config.clone();
    oracle_config.telemetry = false;
    let mut oracle_engine = UpdlrmEngine::from_workload(oracle_config, model.tables(), workload)?;
    let mut sched = Scheduler::new(sched_config)?;
    let modeled = sched.run(&mut oracle_engine, workload, |_, _, _, _| {})?;

    // One identical engine per shard; only shard 0 carries telemetry
    // (the snapshot is a single registry, not a fleet merge).
    let mut engines: Vec<UpdlrmEngine> = (0..shards)
        .map(|i| {
            let mut c = config.clone();
            c.telemetry = metrics_path.is_some() && i == 0;
            UpdlrmEngine::from_workload(c, model.tables(), workload)
        })
        .collect::<Result<_, _>>()?;
    let rt = Runtime::new(RuntimeConfig {
        sched: sched_config,
        shards,
        time_scale,
        deterministic,
        ring_capacity: 64,
    })?;
    let report = rt.run(&mut engines, workload, |_, _, _, _| {})?;

    println!(
        "wall-clock serve on {} ({} arrivals, {} shard{}, time-scale {:.0}x, {})",
        spec.name,
        report.sched.requests,
        shards,
        if shards == 1 { "" } else { "s" },
        time_scale,
        if deterministic {
            "deterministic"
        } else {
            "free-running"
        },
    );
    println!(
        "  measured: {:.0} qps over {:.1} ms of wall time ({} completed, {} shed, {} rejected)",
        report.wall.measured_qps,
        report.wall.wall_elapsed_ns / 1e6,
        report.sched.completed,
        report.sched.shed,
        report.sched.rejected,
    );
    let latency_clock = if deterministic { "modeled" } else { "measured" };
    println!(
        "  latency ({latency_clock}): mean {:.1} us  p50 {:.1} us  p95 {:.1} us  p99 {:.1} us",
        report.sched.mean_latency_ns / 1e3,
        report.sched.p50_latency_ns / 1e3,
        report.sched.p95_latency_ns / 1e3,
        report.sched.p99_latency_ns / 1e3,
    );
    println!(
        "  modeled oracle: {:.0} qps achieved, p50 {:.1} us  p95 {:.1} us  p99 {:.1} us",
        modeled.achieved_qps,
        modeled.p50_latency_ns / 1e3,
        modeled.p95_latency_ns / 1e3,
        modeled.p99_latency_ns / 1e3,
    );
    println!(
        "  batching: {} batches over {} shard{} {:?}, mean fill {:.1}",
        report.sched.batches,
        shards,
        if shards == 1 { "" } else { "s" },
        report.batches_per_shard,
        report.sched.mean_batch_size,
    );
    println!(
        "  service walls: modeled {:.2} ms vs measured {:.2} ms per run",
        report.wall.modeled_service_ns / 1e6,
        report.wall.measured_service_ns / 1e6,
    );
    if deterministic {
        if report.sched == modeled {
            println!(
                "  oracle lock: OK — wall runtime reproduced the modeled scheduler byte for byte"
            );
        } else {
            eprintln!("warning: deterministic wall run diverged from the modeled oracle");
        }
    }

    if let Some(path) = args.flags.get("json") {
        let json = SchedJson {
            dataset: spec.short.to_string(),
            strategy: args.str("strategy", "ca"),
            dpus: args.num("dpus", 256),
            arrival: workload.arrivals.process.tag().to_string(),
            offered_qps: qps,
            max_batch: sched_config.max_batch_size,
            max_wait_us: (sched_config.max_wait_ns / 1_000) as usize,
            queue_cap: sched_config.queue_cap,
            policy: sched_config.policy.to_string(),
            report: report.sched,
            batch_hist: report.batch_histogram.clone(),
            runtime: Some(RuntimeJson {
                shards,
                time_scale,
                deterministic,
                wall: report.wall,
                modeled_report: modeled,
                batches_per_shard: report.batches_per_shard.clone(),
            }),
        };
        std::fs::write(path, serde::json::to_string_pretty(&json))?;
        println!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        engines[0].metrics_mut().record_runtime(RuntimeSnapshot {
            shards: shards as u64,
            deterministic,
            time_scale,
            wall_elapsed_ns: report.wall.wall_elapsed_ns,
            measured_qps: report.wall.measured_qps,
            modeled_service_ns: report.wall.modeled_service_ns,
            measured_service_ns: report.wall.measured_service_ns,
            measured_p50_latency_ns: report.sched.p50_latency_ns,
            measured_p95_latency_ns: report.sched.p95_latency_ns,
            measured_p99_latency_ns: report.sched.p99_latency_ns,
        });
        write_metrics(path, &engines[0].metrics_snapshot())?;
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.flags.get("metrics") else {
        eprintln!("stats needs --metrics FILE (a snapshot written by `updlrm run --metrics`)");
        usage()
    };
    let text = std::fs::read_to_string(path)?;
    let snap: Snapshot = serde::json::from_str(&text)?;
    if snap.schema_version != SNAPSHOT_SCHEMA_VERSION {
        eprintln!(
            "metrics snapshot {path} has schema v{}, but this binary reads v{}; \
             regenerate it with `updlrm run --metrics {path}`",
            snap.schema_version, SNAPSHOT_SCHEMA_VERSION,
        );
        std::process::exit(2)
    }
    println!(
        "metrics snapshot {path} (schema v{}, telemetry {})",
        snap.schema_version,
        if snap.enabled { "on" } else { "off" },
    );
    println!(
        "  recorded: {} serves, {} batches, {} samples",
        snap.serves, snap.batches, snap.samples,
    );
    println!(
        "  stage means/batch: route {:8.1} us | s1 {:8.1} us | s2 {:8.1} us | s3 {:8.1} us | combine {:8.1} us",
        snap.route_ns.mean() / 1e3,
        snap.stage1_ns.mean() / 1e3,
        snap.stage2_ns.mean() / 1e3,
        snap.stage3_ns.mean() / 1e3,
        snap.combine_ns.mean() / 1e3,
    );
    let t = snap.mean_stage_total_ns();
    if t > 0.0 {
        println!(
            "  stage shares: s1 {:.0}% / s2 {:.0}% / s3 {:.0}%",
            100.0 * snap.stage1_ns.mean() / t,
            100.0 * snap.stage2_ns.mean() / t,
            100.0 * snap.stage3_ns.mean() / t,
        );
    }
    if snap.serves > 0 && snap.sequential_wall_ns > 0.0 {
        println!(
            "  pipeline: executed wall {:.1} us vs {:.1} us back-to-back ({:.1}% saved by overlap)",
            snap.serve_wall_ns / 1e3,
            snap.sequential_wall_ns / 1e3,
            100.0 * snap.overlap_saved_ns / snap.sequential_wall_ns,
        );
    }
    println!(
        "  load imbalance: mean {:.3}  max {:.3}  over {} launches",
        snap.load_imbalance.mean(),
        snap.load_imbalance.max,
        snap.launches,
    );
    if snap.cache.refs > 0 {
        println!(
            "  cache: {} lookups, {:.1}% of {} refs covered, {} partial-sum rows fetched, {} row fetches saved",
            snap.cache.lookups,
            100.0 * snap.cache.hit_rate,
            snap.cache.refs,
            snap.cache.hit_entries,
            snap.cache.fetches_saved,
        );
    }
    println!(
        "  traffic: {:.2} MB scattered CPU→MRAM (stage 1), {:.2} MB gathered MRAM→CPU (stage 3)",
        snap.stage1_bytes as f64 / 1e6,
        snap.stage3_bytes as f64 / 1e6,
    );
    if snap.sched.batches > 0 {
        println!(
            "  scheduler: {} admitted, {} shed, {} rejected, {} blocked, queue high-water {}",
            snap.sched.admitted,
            snap.sched.shed_oldest,
            snap.sched.rejected_new,
            snap.sched.blocked,
            snap.sched.queue_depth_high_water,
        );
        println!(
            "  batching: {} batches, mean fill {:.1} (size {} / deadline {} / drain {})",
            snap.sched.batches,
            snap.sched.batch_fill.mean(),
            snap.sched.trigger_size,
            snap.sched.trigger_deadline,
            snap.sched.trigger_drain,
        );
    }
    if snap.runtime.shards > 0 {
        println!(
            "  wall runtime: {} shard{} (time-scale {:.0}x, {}), {:.0} qps measured over {:.1} ms",
            snap.runtime.shards,
            if snap.runtime.shards == 1 { "" } else { "s" },
            snap.runtime.time_scale,
            if snap.runtime.deterministic {
                "deterministic"
            } else {
                "free-running"
            },
            snap.runtime.measured_qps,
            snap.runtime.wall_elapsed_ns / 1e6,
        );
        println!(
            "  wall latency: p50 {:.1} us  p95 {:.1} us  p99 {:.1} us; \
             service walls modeled {:.2} ms vs measured {:.2} ms",
            snap.runtime.measured_p50_latency_ns / 1e3,
            snap.runtime.measured_p95_latency_ns / 1e3,
            snap.runtime.measured_p99_latency_ns / 1e3,
            snap.runtime.modeled_service_ns / 1e6,
            snap.runtime.measured_service_ns / 1e6,
        );
    }
    for t in &snap.tenants {
        println!(
            "  tenant {} (w {:.1}): {} admitted ({} shed, {} rejected), {} completed in {} batches",
            t.name, t.weight, t.admitted, t.shed, t.rejected, t.completed, t.batches,
        );
        let slo = if t.slo_p99_ns > 0.0 {
            format!(
                "slo {:.0} us ({} violations)",
                t.slo_p99_ns / 1e3,
                t.slo_violations
            )
        } else {
            "no slo".into()
        };
        println!(
            "    p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  {slo}  \
             fleet share {:.2} (configured {:.2})",
            t.p50_latency_ns / 1e3,
            t.p95_latency_ns / 1e3,
            t.p99_latency_ns / 1e3,
            t.fleet_share_achieved,
            t.fleet_share_configured,
        );
    }
    if !snap.per_dpu.is_empty() {
        let cycles: Vec<u64> = snap.per_dpu.iter().map(|d| d.cycles).collect();
        let total: u64 = cycles.iter().sum();
        let occ = snap
            .per_dpu
            .iter()
            .map(|d| d.tasklet_occupancy)
            .sum::<f64>()
            / snap.per_dpu.len() as f64;
        println!(
            "  fleet: {} DPUs, {:.2} Mcycles total, mean tasklet occupancy {:.2}, \
             busiest/idlest DPU {} / {} cycles",
            snap.per_dpu.len(),
            total as f64 / 1e6,
            occ,
            cycles.iter().max().unwrap_or(&0),
            cycles.iter().min().unwrap_or(&0),
        );
    }
    Ok(())
}

/// Splits a colon-separated flag value into exactly `n` parsed fields,
/// exiting 2 with a usage hint otherwise.
fn split_fields<T: std::str::FromStr>(flag: &str, value: &str, n: usize, hint: &str) -> Vec<T> {
    let parts: Vec<&str> = value.split(':').collect();
    if parts.len() != n {
        eprintln!("--{flag} expects {hint}, got '{value}'");
        std::process::exit(2)
    }
    parts
        .iter()
        .map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("--{flag}: cannot parse '{p}' in '{value}' (want {hint})");
                std::process::exit(2)
            })
        })
        .collect()
}

/// Builds the UPWL v3 drift schedule from `--rotate` / `--spike` /
/// `--diurnal`, or `None` when no drift flag is present. Validates the
/// schedule against the dataset's row count (exit 2 on a hot set that
/// does not fit — the same check the loader applies).
fn parse_drift(args: &Args, spec: &DatasetSpec) -> Option<DriftSchedule> {
    let mut drift = DriftSchedule::default();
    if let Some(v) = args.flags.get("rotate") {
        let f = split_fields::<f64>("rotate", v, 4, "SETS:ROWS:PERIOD_US:HOT_FRACTION");
        drift.rotation = Some(HotSetRotation {
            num_sets: f[0] as usize,
            set_size: f[1] as usize,
            period_ns: (f[2] * 1_000.0) as u64,
            hot_fraction: f[3],
        });
    }
    if let Some(v) = args.flags.get("spike") {
        let f = split_fields::<f64>("spike", v, 5, "START_US:DUR_US:SET:EXTRA_HOT:RATE_BOOST");
        drift.spikes.push(FlashCrowd {
            start_ns: (f[0] * 1_000.0) as u64,
            duration_ns: (f[1] * 1_000.0) as u64,
            target_set: f[2] as usize,
            extra_hot: f[3],
            rate_boost: f[4],
        });
    }
    if let Some(v) = args.flags.get("diurnal") {
        let f = split_fields::<f64>("diurnal", v, 2, "PERIOD_US:AMPLITUDE");
        drift.diurnal = Some(DiurnalCurve {
            period_ns: (f[0] * 1_000.0) as u64,
            amplitude: f[1],
        });
    }
    if drift.is_trivial() {
        return None;
    }
    if let Err(e) = drift.validate(spec.num_items) {
        eprintln!("invalid drift schedule: {e}");
        std::process::exit(2)
    }
    Some(drift)
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_or_exit(args).scaled_down(args.num("scale", 200));
    let trace_config = TraceConfig {
        num_batches: args.num("batches", 10),
        seed: args.num("seed", 7) as u64,
        ..TraceConfig::default()
    };
    let workload = if let Some(drift) = parse_drift(args, &spec) {
        // Drift is a function of arrival time, so a v3 trace always
        // carries an open-loop arrival process (`--qps` is required).
        let qps = args.positive_float("qps");
        Workload::generate_drifting(&spec, trace_config, drift, arrival_or_exit(args, qps))
    } else {
        let mut workload = Workload::generate(&spec, trace_config);
        if args.flags.contains_key("arrival") || args.flags.contains_key("qps") {
            // `--arrival` defaults to poisson, but a rate is always needed.
            let qps = args.positive_float("qps");
            workload.stamp_arrivals(arrival_or_exit(args, qps));
        }
        workload
    };
    let out = args.flags.get("out").cloned().unwrap_or_else(|| usage());
    let mut file = std::fs::File::create(&out)?;
    workload.save(&mut file)?;
    let arrivals = if workload.arrivals.process.is_closed_loop() {
        "closed-loop".to_string()
    } else {
        format!(
            "{} arrivals at {:.0} qps offered",
            workload.arrivals.process.tag(),
            workload.arrivals.process.offered_qps().unwrap_or(0.0),
        )
    };
    let version = if workload.drift.is_some() {
        "UPWL v3, drifting"
    } else {
        "UPWL"
    };
    println!(
        "wrote {} ({} batches, {} lookups, {} items/table, {arrivals}, {version}) to {out}",
        spec.name,
        workload.batches.len(),
        workload.total_lookups(),
        spec.num_items,
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_or_exit(args);
    println!("{} ({})", spec.name, spec.short);
    println!("  category:       {}", spec.hotness);
    println!("  avg reduction:  {}", spec.avg_reduction);
    println!("  items:          {}", spec.num_items);
    println!("  zipf theta:     {}", spec.zipf_theta);
    println!(
        "  table size:     {:.1} MB at 32 dims",
        spec.table_bytes(32) as f64 / 1e6
    );
    println!(
        "  co-occurrence:  clusters of {}, rate {}, fraction {}",
        spec.cooccur.cluster_size, spec.cooccur.cluster_rate, spec.cooccur.clustered_fraction
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage();
    };
    let args = Args::parse(rest);
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "pack" => cmd_pack(&args),
        "plan" => cmd_plan(&args),
        "serve" => cmd_serve(&args),
        "capacity" => cmd_capacity(&args),
        "stats" => cmd_stats(&args),
        "trace" => cmd_trace(&args),
        "info" => cmd_info(&args),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
