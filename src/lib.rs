//! # updlrm — reproduction of "UpDLRM: Accelerating Personalized
//! Recommendation using Real-World PIM Architecture" (DAC 2024)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`upmem_sim`] — functional + timing simulator of the UPMEM PIM
//!   architecture (DPUs, MRAM/WRAM, tasklet pipeline, host transfers);
//! * [`dlrm_model`] — the DLRM substrate (embedding bags, MLPs,
//!   feature interaction, reference CPU inference);
//! * [`workloads`] — synthetic datasets matched to the paper's Table 1
//!   (Zipf popularity, co-occurrence structure, trace generation,
//!   access profiling);
//! * [`cooccur_cache`] — GRACE-style co-occurrence mining and
//!   partial-sum caching;
//! * [`updlrm_core`] — the paper's contribution: uniform / non-uniform
//!   / cache-aware EMT partitioning and the three-stage PIM embedding
//!   engine;
//! * [`baselines`] — DLRM-CPU, DLRM-Hybrid and FAE comparison backends
//!   behind a common [`baselines::InferenceBackend`] trait.
//!
//! ## Quickstart
//!
//! ```rust
//! use updlrm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A GoodReads-like workload, scaled down for this doctest.
//! let spec = DatasetSpec::goodreads().scaled_down(10_000);
//! let workload = Workload::generate(
//!     &spec,
//!     TraceConfig { num_tables: 2, num_batches: 2, ..TraceConfig::default() },
//! );
//!
//! // A DLRM whose two embedding tables match the workload.
//! let model = Dlrm::new(DlrmConfig {
//!     num_dense: 13,
//!     embedding_dim: 32,
//!     table_rows: vec![spec.num_items; 2],
//!     bottom_hidden: vec![64],
//!     top_hidden: vec![64, 16],
//!     seed: 7,
//! })?;
//!
//! // UpDLRM: cache-aware partitioning over 16 simulated DPUs.
//! let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware);
//! let mut engine = UpdlrmEngine::from_workload(config, model.tables(), &workload)?;
//! let (ctr, breakdown) = engine.run_inference(&model, &workload.batches[0])?;
//! assert_eq!(ctr.len(), 64);
//! println!(
//!     "embedding layer: {:.1} us (stage2 = {:.0}%)",
//!     breakdown.total_ns() / 1e3,
//!     100.0 * breakdown.stage2_ns / breakdown.total_ns(),
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use baselines;
pub use cooccur_cache;
pub use dlrm_model;
pub use placement;
pub use runtime;
pub use scheduler;
pub use tenancy;
pub use updlrm_core;
pub use upmem_sim;
pub use workloads;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use baselines::{
        CpuMemoryModel, DlrmCpu, DlrmHybrid, DpuGpuHetero, Fae, GpuModel, InferenceBackend,
        LatencyReport, UpdlrmBackend,
    };
    pub use cooccur_cache::{CacheList, CacheListSet, CooccurGraph, MinerConfig, PartialSumCache};
    pub use dlrm_model::{
        simd, Dlrm, DlrmConfig, EmbedDtype, EmbeddingTable, Matrix, QueryBatch, SparseInput,
    };
    pub use placement::{
        interleaved_offsets, plan as plan_placement, Catalog, PlacementPlan, PlanError,
        PlanProvenance, PlannerConfig, TableDesc, PLAN_SCHEMA_VERSION,
    };
    pub use runtime::{Runtime, RuntimeConfig, RuntimeReport, WallStats};
    pub use scheduler::{OverloadPolicy, SchedConfig, SchedReport, Scheduler};
    pub use tenancy::{
        capacity_sweep, parse_tenants_toml, Arbitration, CapacityPoint, FleetConfig, FleetReport,
        TenantFleet, TenantReport, TenantSpec, TenantsFile,
    };
    pub use updlrm_core::{
        BatchServer, EmbeddingBreakdown, MetricsRegistry, PartitionStrategy, PipelineMode,
        PipelineReport, ReplanPolicy, RuntimeSnapshot, ServeOutcome, ServeReport, Snapshot,
        TenantSnapshot, TieredEngine, Tiling, TilingProblem, UpdlrmConfig, UpdlrmEngine,
        SNAPSHOT_SCHEMA_VERSION,
    };
    pub use upmem_sim::{CostModel, DpuId, PimConfig, PimSystem, RankCostModel, RankTopology};
    pub use workloads::{
        save_packed, ArrivalProcess, ArrivalTrace, DatasetSpec, DiurnalCurve, DriftSchedule,
        FlashCrowd, FreqProfile, HotSetRotation, Hotness, PackError, PackedTables, TraceConfig,
        Workload, ZipfSampler, NS_PER_SEC,
    };
}
