//! Partition explorer: compare the three EMT partitioning strategies on
//! any of the paper's datasets.
//!
//! ```text
//! cargo run --release --example partition_explorer -- read2
//! cargo run --release --example partition_explorer -- movie
//! ```
//!
//! Prints the Eq. 1–3 tiling search, per-partition loads and the
//! resulting workload-balance statistics for U, NU and CA.

use updlrm::cooccur_cache::{CacheListSet, CooccurGraph};
use updlrm::prelude::*;
use updlrm::updlrm_core::{cache_aware, non_uniform, uniform, TilingProblem};

fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    let spec = match name {
        "clo" => DatasetSpec::amazon_clothes(),
        "home" => DatasetSpec::amazon_home(),
        "meta1" => DatasetSpec::meta_fbgemm1(),
        "meta2" => DatasetSpec::meta_fbgemm2(),
        "read" => DatasetSpec::goodreads(),
        "read2" => DatasetSpec::goodreads2(),
        "movie" => DatasetSpec::movie(),
        "twitch" => DatasetSpec::twitch(),
        _ => return None,
    };
    Some(spec)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "read".to_string());
    let Some(full_spec) = spec_by_name(&name) else {
        eprintln!("unknown dataset '{name}'; try clo|home|meta1|meta2|read|read2|movie|twitch");
        std::process::exit(2);
    };
    let spec = full_spec.scaled_down(200);
    println!(
        "dataset {name}: {} items (scaled from {}), avg reduction {:.1}, zipf theta {}",
        spec.num_items, full_spec.num_items, spec.avg_reduction, spec.zipf_theta
    );

    // Profile a trace.
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 1,
            num_batches: 16,
            ..TraceConfig::default()
        },
    );
    let profile = FreqProfile::from_inputs(spec.num_items, workload.table_inputs(0));
    println!(
        "trace: {} accesses, 8-block skew {:.0}x",
        profile.total_accesses(),
        profile.block_skew(8)
    );

    // The Eq. 1-3 tiling search over one 32-DPU group.
    let problem = TilingProblem {
        rows: spec.num_items,
        cols: 32,
        dpus: 32,
        batch_size: 64,
        avg_reduction: spec.avg_reduction,
        emt_capacity_bytes: 48 << 20,
    };
    let cost = CostModel::default();
    println!("\nEq. 1-3 tiling candidates (32 DPUs per table):");
    for n_c in [2usize, 4, 6, 8] {
        match problem.tiling_for_nc(n_c, &cost) {
            Ok(t) => println!(
                "  N_c = {n_c}: {} row parts x {} col slices, N_r = {}, est. cost {:.1} us",
                t.row_parts,
                t.col_slices,
                t.n_r,
                t.est_cost_ns / 1e3
            ),
            Err(e) => println!("  N_c = {n_c}: infeasible ({e})"),
        }
    }
    let best = problem.search(&cost)?;
    println!("  -> chosen: N_c = {}", best.n_c);

    // Partition with each strategy at the chosen shape.
    let parts = best.row_parts;
    let cap = spec.num_items;
    let u = uniform(spec.num_items, parts, cap, &profile)?;
    let nu = non_uniform(spec.num_items, parts, cap, &profile)?;

    let mut graph = CooccurGraph::new(&profile, 2048);
    graph.record_inputs(workload.table_inputs(0));
    let mut lists = CacheListSet::mine(&graph, &MinerConfig::default());
    lists.measure_benefit(workload.table_inputs(0));
    let ca = cache_aware(spec.num_items, parts, cap, cap, &profile, &lists)?;

    println!("\nper-partition predicted load ({} partitions):", parts);
    println!("{:>6}  {:>12}  {:>12}  {:>12}", "part", "U", "NU", "CA");
    for p in 0..parts {
        println!(
            "{:>6}  {:>12.0}  {:>12.0}  {:>12.0}",
            p, u.part_load[p], nu.part_load[p], ca.rows.part_load[p]
        );
    }
    println!(
        "\nimbalance (max/mean): U {:.2}, NU {:.2}, CA {:.2}",
        u.imbalance(),
        nu.imbalance(),
        ca.rows.imbalance()
    );
    println!(
        "cache: {} lists placed, {} combination rows, {:.1}% of accesses saved",
        ca.placed_lists.lists.len(),
        ca.cache_rows_per_part.iter().sum::<u32>(),
        100.0 * ca.placed_lists.lists.iter().map(|l| l.benefit).sum::<f64>()
            / profile.total_accesses() as f64
    );
    Ok(())
}
