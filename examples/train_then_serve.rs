//! Train a DLRM with SGD, then serve it from the PIM array —
//! demonstrating that the UpDLRM engine works with *learned* embedding
//! tables, not just random ones.
//!
//! ```text
//! cargo run --release --example train_then_serve
//! ```
//!
//! The synthetic task plants a signal in the item space: samples built
//! from "positive" items click, the rest do not. After training, the
//! PIM-served model must reproduce the CPU model's predictions exactly
//! and recover the planted signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use updlrm::dlrm_model::SgdConfig;
use updlrm::prelude::*;

const ITEMS: usize = 2_000;
const TABLES: usize = 4;
const DIM: usize = 32;

/// Samples a batch of the synthetic click task: positive samples draw
/// from the first half of the item space.
fn task_batch(b: usize, rng: &mut StdRng) -> (QueryBatch, Vec<f32>) {
    let mut labels = Vec::with_capacity(b);
    let mut per_table: Vec<Vec<Vec<u64>>> = (0..TABLES).map(|_| Vec::with_capacity(b)).collect();
    let mut dense = Vec::with_capacity(b * 13);
    for _ in 0..b {
        let positive = rng.random_bool(0.5);
        labels.push(if positive { 1.0 } else { 0.0 });
        let lo = if positive { 0 } else { ITEMS as u64 / 2 };
        let hi = if positive {
            ITEMS as u64 / 2
        } else {
            ITEMS as u64
        };
        for t in per_table.iter_mut() {
            let k = rng.random_range(2..8);
            t.push((0..k).map(|_| rng.random_range(lo..hi)).collect());
        }
        for _ in 0..13 {
            dense.push(rng.random_range(-0.5..0.5));
        }
    }
    let sparse = per_table
        .into_iter()
        .map(SparseInput::from_samples)
        .collect();
    (
        QueryBatch::new(dense, 13, sparse).expect("valid batch"),
        labels,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: DIM,
        table_rows: vec![ITEMS; TABLES],
        bottom_hidden: vec![32],
        top_hidden: vec![64, 16],
        seed: 2024,
    })?;

    // ---- train on the CPU ----
    let sgd = SgdConfig {
        lr_dense: 0.1,
        lr_embedding: 0.4,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut first_loss = None;
    let mut last = None;
    for step in 0..400 {
        let (batch, labels) = task_batch(64, &mut rng);
        let stats = model.train_batch(&batch, &labels, &sgd)?;
        first_loss.get_or_insert(stats.loss);
        if step % 100 == 0 {
            println!(
                "step {step:4}: loss {:.4}, accuracy {:.2}",
                stats.loss, stats.accuracy
            );
        }
        last = Some(stats);
    }
    let last = last.expect("trained at least one step");
    println!(
        "training: loss {:.3} -> {:.3}, accuracy {:.2}",
        first_loss.expect("first loss"),
        last.loss,
        last.accuracy
    );
    assert!(last.accuracy > 0.9, "the toy task should be learnable");

    // ---- serve the trained model from the PIM array ----
    let mut eval_rng = StdRng::seed_from_u64(999);
    let (eval_batch, eval_labels) = task_batch(64, &mut eval_rng);
    // Build a serving workload around the evaluation traffic so the
    // partitioners see representative frequencies.
    let spec = DatasetSpec::balanced_synthetic(ITEMS, 5.0);
    let mut serve_rng = StdRng::seed_from_u64(31);
    let batches: Vec<QueryBatch> = (0..8).map(|_| task_batch(64, &mut serve_rng).0).collect();
    let workload = Workload {
        spec,
        config: TraceConfig {
            num_tables: TABLES,
            batch_size: 64,
            num_batches: batches.len(),
            num_dense: 13,
            seed: 31,
        },
        batches,
        arrivals: updlrm::workloads::ArrivalTrace::closed_loop(),
        drift: None,
    };
    let mut engine = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(32, PartitionStrategy::CacheAware),
        model.tables(),
        &workload,
    )?;

    let (pim_ctr, breakdown) = engine.run_inference(&model, &eval_batch)?;
    let cpu_ctr = model.forward(&eval_batch)?;
    let max_err = pim_ctr
        .iter()
        .zip(cpu_ctr.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let accuracy = pim_ctr
        .iter()
        .zip(eval_labels.iter())
        .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
        .count() as f32
        / eval_labels.len() as f32;
    println!(
        "PIM serving: accuracy {accuracy:.2}, max |PIM - CPU| = {max_err:.2e}, \
         embedding layer {:.1} us",
        breakdown.total_ns() / 1e3
    );
    assert!(max_err < 1e-4, "PIM must agree with the trained CPU model");
    assert!(accuracy > 0.85);
    println!("trained model served from simulated UPMEM DPUs successfully");
    Ok(())
}
