//! CTR inference service simulation: compare tail latencies of the four
//! systems serving the same request stream.
//!
//! ```text
//! cargo run --release --example ctr_server
//! ```
//!
//! Models the serving scenario the paper's introduction motivates:
//! batches of CTR queries arrive, each system answers them, and what
//! matters operationally is the latency distribution (p50/p95/p99), not
//! just the mean.

use std::sync::Arc;
use updlrm::prelude::*;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::meta_fbgemm2().scaled_down(400);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: 30,
            ..TraceConfig::default()
        },
    );
    let model = Arc::new(Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: 32,
        table_rows: vec![spec.num_items; 8],
        bottom_hidden: vec![64],
        top_hidden: vec![64, 16],
        seed: 11,
    })?);
    let profiles: Vec<FreqProfile> = (0..8)
        .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
        .collect();

    println!(
        "serving {} batches of {} queries ({} items/table, avg reduction {:.0})\n",
        workload.batches.len(),
        workload.config.batch_size,
        spec.num_items,
        workload.measured_avg_reduction()
    );

    // Scale the capacity-sensitive hardware parameters like the tables
    // (see EXPERIMENTS.md "Scaling"), otherwise the scaled-down tables
    // fit entirely in the modeled LLC / GPU memory.
    let mem = CpuMemoryModel {
        llc_bytes: (11 << 20) / 400,
        ..CpuMemoryModel::default()
    };
    let gpu = GpuModel {
        mem_bytes: (11usize << 30) / 400,
        ..GpuModel::default()
    };
    let mut backends: Vec<Box<dyn InferenceBackend>> = vec![
        Box::new(DlrmCpu::new(model.clone(), &profiles, mem.clone())?),
        Box::new(DlrmHybrid::new(
            model.clone(),
            &profiles,
            mem.clone(),
            gpu.clone(),
        )?),
        Box::new(Fae::new(model.clone(), &profiles, mem.clone(), gpu, 0.85)?),
        Box::new(UpdlrmBackend::from_workload(
            UpdlrmConfig::with_dpus(256, PartitionStrategy::CacheAware),
            model.clone(),
            &workload,
            mem,
        )?),
    ];

    println!(
        "{:>12}  {:>10}  {:>10}  {:>10}  {:>10}",
        "system", "p50 (us)", "p95 (us)", "p99 (us)", "mean (us)"
    );
    let mut reference: Option<Vec<f32>> = None;
    for backend in &mut backends {
        let mut latencies = Vec::with_capacity(workload.batches.len());
        let mut first_out = None;
        for batch in &workload.batches {
            let (out, report) = backend.run_batch(batch)?;
            latencies.push(report.total_ns() / 1e3);
            if first_out.is_none() {
                first_out = Some(out);
            }
        }
        // All systems must produce the same predictions.
        let out = first_out.expect("at least one batch");
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                for (a, b) in out.iter().zip(r.iter()) {
                    assert!((a - b).abs() < 1e-4, "backend outputs diverge");
                }
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean: f64 = latencies.iter().sum::<f64>() / latencies.len() as f64;
        println!(
            "{:>12}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}",
            backend.name(),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            mean
        );
    }
    println!("\nall four systems returned identical CTR predictions");
    Ok(())
}
