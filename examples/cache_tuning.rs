//! Cache tuning: sweep the partial-sum cache capacity (the paper's §3.3
//! knob) and the miner's list length, showing the storage/latency
//! trade-off.
//!
//! ```text
//! cargo run --release --example cache_tuning
//! ```

use std::sync::Arc;
use updlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::goodreads().scaled_down(400);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: 12,
            ..TraceConfig::default()
        },
    );
    let model = Arc::new(Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: 32,
        table_rows: vec![spec.num_items; 8],
        bottom_hidden: vec![64],
        top_hidden: vec![64, 16],
        seed: 23,
    })?);
    println!(
        "GoodReads-like workload: {} items/table, avg reduction {:.0}\n",
        spec.num_items,
        workload.measured_avg_reduction()
    );

    let measure = |config: UpdlrmConfig| -> Result<(f64, u64), Box<dyn std::error::Error>> {
        let mut backend = UpdlrmBackend::from_workload(
            config,
            model.clone(),
            &workload,
            CpuMemoryModel::default(),
        )?;
        let mut lookup_ns = 0.0;
        let mut dma = 0;
        for batch in &workload.batches {
            let (_, report) = backend.run_batch(batch)?;
            let pim = report.pim.expect("PIM backend");
            lookup_ns += pim.stage2_ns;
            dma += pim.dma_transfers;
        }
        Ok((lookup_ns, dma))
    };

    // Baseline: non-uniform, no cache.
    let (base_ns, base_dma) = measure(UpdlrmConfig::with_dpus(64, PartitionStrategy::NonUniform))?;
    println!(
        "baseline NU (no cache): lookup {:.1} us, {} MRAM reads",
        base_ns / 1e3,
        base_dma
    );

    println!("\ncache capacity sweep (fraction of mined-list storage):");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}",
        "capacity", "lookup (us)", "MRAM reads", "vs base"
    );
    for fraction in [0.2, 0.4, 0.7, 1.0] {
        let config = UpdlrmConfig::with_dpus(64, PartitionStrategy::CacheAware)
            .with_cache_fraction(fraction);
        let (ns, dma) = measure(config)?;
        println!(
            "{:>9.0}%  {:>12.1}  {:>12}  {:>9.1}%",
            fraction * 100.0,
            ns / 1e3,
            dma,
            (1.0 - ns / base_ns) * 100.0
        );
    }

    println!("\nmax cache-list length sweep (storage is 2^k - 1 rows per list):");
    println!(
        "{:>10}  {:>12}  {:>14}",
        "max items", "lookup (us)", "cache rows/tbl"
    );
    for max_list_len in [2usize, 3, 4, 5] {
        let mut config = UpdlrmConfig::with_dpus(64, PartitionStrategy::CacheAware);
        config.miner = MinerConfig {
            max_list_len,
            ..MinerConfig::default()
        };
        let backend = UpdlrmBackend::from_workload(
            config.clone(),
            model.clone(),
            &workload,
            CpuMemoryModel::default(),
        )?;
        let rows: u32 = backend
            .engine()
            .table_report(0)
            .cache_rows_per_part
            .iter()
            .sum();
        let (ns, _) = measure(config)?;
        println!("{:>10}  {:>12.1}  {:>14}", max_list_len, ns / 1e3, rows);
    }
    println!("\npaper (§3.3): 40% / 70% / 100% capacity cut lookup time 17% / 22% / 26%");
    Ok(())
}
