//! Quickstart: run UpDLRM end-to-end on a GoodReads-like workload and
//! print the embedding-layer latency breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use updlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: GoodReads-like skew, scaled down so the example
    //    runs in seconds. Eight embedding tables, batch size 64.
    let spec = DatasetSpec::goodreads().scaled_down(200);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: 10,
            ..TraceConfig::default()
        },
    );
    println!(
        "workload: {} ({} items, avg reduction {:.1}, {} batches of {})",
        spec.name,
        spec.num_items,
        workload.measured_avg_reduction(),
        workload.batches.len(),
        workload.config.batch_size,
    );

    // 2. A DLRM whose eight tables match the workload.
    let model = Dlrm::new(DlrmConfig {
        num_dense: 13,
        embedding_dim: 32,
        table_rows: vec![spec.num_items; 8],
        bottom_hidden: vec![64],
        top_hidden: vec![64, 16],
        seed: 42,
    })?;
    println!(
        "model: 8 tables x {} rows x 32 dims = {:.1} MB of embeddings",
        spec.num_items,
        model.embedding_bytes() as f64 / 1e6
    );

    // 3. UpDLRM: partition the tables cache-aware over 64 simulated
    //    DPUs (profiling + GRACE-style cache mining happen inside).
    let config = UpdlrmConfig::with_dpus(64, PartitionStrategy::CacheAware);
    let mut engine = UpdlrmEngine::from_workload(config, model.tables(), &workload)?;
    for t in 0..1 {
        let report = engine.table_report(t);
        println!(
            "table {t}: N_c = {} ({} row partitions x {} column slices), \
             {} cache lists placed, load imbalance {:.2}",
            report.tiling.n_c,
            report.tiling.row_parts,
            report.tiling.col_slices,
            report.cached_lists,
            report.imbalance,
        );
    }

    // 4. Inference: embeddings on the PIM array, dense layers on the CPU.
    let mut acc = EmbeddingBreakdown::default();
    let mut checked = 0;
    for batch in &workload.batches {
        let (ctr, breakdown) = engine.run_inference(&model, batch)?;
        acc.accumulate(&breakdown);
        // The PIM path must agree with the pure-CPU reference.
        let reference = model.forward(batch)?;
        for (a, b) in ctr.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-4, "PIM and CPU disagree: {a} vs {b}");
        }
        checked += ctr.len();
    }
    println!("verified {checked} CTR predictions against the CPU reference");

    let total = acc.total_ns();
    println!(
        "\nembedding-layer breakdown over {} batches:",
        workload.batches.len()
    );
    println!(
        "  stage 1 (CPU->DPU): {:9.1} us ({:4.1}%)",
        acc.stage1_ns / 1e3,
        100.0 * acc.stage1_ns / total
    );
    println!(
        "  stage 2 (lookup):   {:9.1} us ({:4.1}%)",
        acc.stage2_ns / 1e3,
        100.0 * acc.stage2_ns / total
    );
    println!(
        "  stage 3 (DPU->CPU): {:9.1} us ({:4.1}%)",
        acc.stage3_ns / 1e3,
        100.0 * acc.stage3_ns / total
    );
    println!("  total:              {:9.1} us", total / 1e3);
    println!("  MRAM DMA transfers: {}", acc.dma_transfers);
    println!(
        "  lookup imbalance:   {:.2} (max DPU / mean DPU)",
        acc.lookup_imbalance
    );
    Ok(())
}
